//! Device and node models, with presets for the instance types the paper
//! evaluates on (§5.1.1, §5.2, §5.3).
//!
//! All figures are taken from the paper's own setup description where given,
//! and from public AWS documentation otherwise. They parameterise the
//! [`crate::Resource`] queueing models; the reproduction cares about the
//! *relative* shapes these produce, not absolute seconds.

use crate::resource::Resource;
use crate::time::SimDuration;

/// Disk subsystem of a node: an array of identical devices.
#[derive(Clone, Copy, Debug)]
pub struct DiskSpec {
    /// Number of devices (HDD spindles or NVMe channels) served in parallel.
    pub devices: usize,
    /// Aggregate sequential bandwidth across devices, bytes/second.
    pub seq_bw: f64,
    /// Average random access (seek) latency per device.
    pub seek: SimDuration,
    /// Fixed per-operation overhead (request setup, FS dispatch).
    pub per_op: SimDuration,
}

impl DiskSpec {
    /// Effective random IOPS limit implied by the seek model.
    pub fn random_iops(&self) -> f64 {
        if self.seek == SimDuration::ZERO {
            f64::INFINITY
        } else {
            self.devices as f64 / self.seek.as_secs_f64()
        }
    }

    /// Instantiate the queueing resource for one node's disk array.
    pub fn build(&self, label: impl Into<String>) -> Resource {
        Resource::new(label, self.devices, self.seq_bw, self.seek, self.per_op)
    }
}

/// Network interface of a node. Modelled as two independent directions
/// (full duplex), each a single FIFO server at `bw` bytes/second.
#[derive(Clone, Copy, Debug)]
pub struct NicSpec {
    /// Per-direction bandwidth, bytes/second.
    pub bw: f64,
    /// One-way propagation + stack latency per transfer.
    pub latency: SimDuration,
}

impl NicSpec {
    /// Instantiate one direction of the NIC as a queueing resource.
    pub fn build(&self, label: impl Into<String>) -> Resource {
        Resource::new(label, 1, self.bw, SimDuration::ZERO, self.latency)
    }
}

/// Full description of a worker node.
#[derive(Clone, Copy, Debug)]
pub struct NodeSpec {
    /// CPU cores (= concurrent task slots in the default store mode).
    pub cpus: usize,
    /// Object-store capacity in bytes. Ray defaults to ~30% of node RAM; we
    /// expose it directly so experiments can shrink it (Fig 7 uses 1 GB).
    pub object_store_bytes: u64,
    /// Executor heap memory in bytes (used for OOM modelling in
    /// executor-heap store modes).
    pub heap_bytes: u64,
    /// Disk array.
    pub disk: DiskSpec,
    /// NIC.
    pub nic: NicSpec,
}

const MIB: f64 = 1024.0 * 1024.0;
const GIB: u64 = 1024 * 1024 * 1024;

impl NodeSpec {
    /// `d3.2xlarge` — the paper's HDD node: 8 cores, 64 GiB RAM, 6×HDD with
    /// 1100 MiB/s aggregate sequential throughput, ~6 Gbps network.
    pub fn d3_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 6,
                seq_bw: 1100.0 * MIB,
                // ~4 ms average seek per spindle => ~1.5 K random IOPS/node.
                seek: SimDuration::from_micros(4000),
                per_op: SimDuration::from_micros(100),
            },
            nic: NicSpec {
                bw: 6.0e9 / 8.0, // 6 Gbps sustained
                latency: SimDuration::from_micros(200),
            },
        }
    }

    /// `i3.2xlarge` — the paper's SSD node: 8 cores, 61 GiB RAM, NVMe with
    /// 720 MB/s throughput and 180 K write IOPS, 2.5 Gbps network.
    pub fn i3_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 18 * GIB,
            heap_bytes: 38 * GIB,
            disk: DiskSpec {
                devices: 8, // NVMe queue parallelism
                seq_bw: 720.0 * 1e6,
                // 180 K IOPS across 8 channels => ~44 µs access time.
                seek: SimDuration::from_micros(44),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 2.5e9 / 8.0, // 2.5 Gbps sustained
                latency: SimDuration::from_micros(200),
            },
        }
    }

    /// `r6i.2xlarge` — memory-optimised node used for the online
    /// aggregation experiment (§5.2.1): 8 cores, 64 GiB RAM, EBS-backed.
    pub fn r6i_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 1,
                seq_bw: 500.0 * MIB,
                seek: SimDuration::from_micros(500),
                per_op: SimDuration::from_micros(50),
            },
            nic: NicSpec {
                bw: 12.5e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// `g4dn.4xlarge` — single-GPU trainer node for the single-node ML
    /// experiment (§5.2.2): 16 vCPUs, 64 GiB RAM, local NVMe.
    pub fn g4dn_4xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 16,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 4,
                seq_bw: 450.0 * 1e6,
                seek: SimDuration::from_micros(60),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 20.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// `g4dn.xlarge` — the smaller 4-node distributed-training node
    /// (§5.2.2): 4 vCPUs, 16 GiB RAM.
    pub fn g4dn_xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 4,
            object_store_bytes: 5 * GIB,
            heap_bytes: 10 * GIB,
            disk: DiskSpec {
                devices: 2,
                seq_bw: 225.0 * 1e6,
                seek: SimDuration::from_micros(60),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 5.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// A single-node, 32-vCPU, 244 GB machine matching the Dask-vs-Ray
    /// comparison setup (§5.3.1).
    pub fn dask_comparison_node() -> NodeSpec {
        NodeSpec {
            cpus: 32,
            object_store_bytes: 73 * GIB, // ~30% of 244 GB
            heap_bytes: 171 * GIB,
            disk: DiskSpec {
                devices: 2,
                seq_bw: 400.0 * MIB,
                seek: SimDuration::from_micros(100),
                per_op: SimDuration::from_micros(30),
            },
            nic: NicSpec {
                bw: 10.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// An `sc1`-style cold HDD volume on a small node — the slow disk used
    /// by the spilling microbenchmark (§5.3.2, Fig 7).
    pub fn sc1_microbench_node() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: GIB, // the experiment's 1 GB store
            heap_bytes: 16 * GIB,
            disk: DiskSpec {
                devices: 1,
                seq_bw: 90.0 * MIB, // sc1 baseline throughput
                seek: SimDuration::from_millis(12),
                per_op: SimDuration::from_micros(100),
            },
            nic: NicSpec {
                bw: 10.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }
}

/// A cluster: an ordered list of per-node hardware descriptions. Node `i`
/// in the runtime maps to `spec.node(i)`. Most experiments build the
/// homogeneous case via [`ClusterSpec::homogeneous`]; the mixed-hardware
/// experiments (HDD+SSD sort, GPU-trainer + CPU-feeder loading) use
/// [`ClusterSpec::heterogeneous`] or the presets below.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Build a cluster of `nodes` copies of `node`.
    pub fn homogeneous(node: NodeSpec, nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec {
            nodes: vec![node; nodes],
        }
    }

    /// Build a cluster from an explicit per-node list.
    pub fn heterogeneous(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        ClusterSpec { nodes }
    }

    /// Mixed sort cluster: `d3` HDD nodes (`d3.2xlarge`) followed by `i3`
    /// NVMe nodes (`i3.2xlarge`) — the two disk tiers the paper's sort
    /// evaluation covers, combined into one cluster.
    pub fn mixed_hdd_ssd(d3: usize, i3: usize) -> Self {
        assert!(d3 + i3 >= 1, "cluster needs at least one node");
        let mut nodes = vec![NodeSpec::d3_2xlarge(); d3];
        nodes.extend(vec![NodeSpec::i3_2xlarge(); i3]);
        ClusterSpec { nodes }
    }

    /// ML data-loader cluster (§5.3, Fig 8 shape): one `g4dn.4xlarge` GPU
    /// trainer plus `feeders` memory-optimised `r6i.2xlarge` CPU nodes
    /// that shuffle and feed batches over the network.
    pub fn ml_loader(feeders: usize) -> Self {
        let mut nodes = vec![NodeSpec::g4dn_4xlarge()];
        nodes.extend(vec![NodeSpec::r6i_2xlarge(); feeders]);
        ClusterSpec { nodes }
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Hardware description of node `i`.
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// All per-node hardware descriptions, in node-id order.
    pub fn node_specs(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// True when every node has the same shape as node 0 (field-for-field
    /// in the capacity card; used only for reporting, never for behavior).
    pub fn is_homogeneous(&self) -> bool {
        let first = self.nodes[0].caps();
        self.nodes.iter().all(|n| n.caps() == first)
    }

    /// Aggregate sequential disk bandwidth of the cluster, bytes/second.
    pub fn aggregate_disk_bw(&self) -> f64 {
        self.nodes.iter().map(|n| n.disk.seq_bw).sum()
    }

    /// The paper's theoretical external-sort lower bound `T = 4D / B`
    /// (§5.1.1): every byte is read twice and written twice against the
    /// aggregate disk bandwidth `B`.
    pub fn theoretical_sort_time(&self, data_bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(4.0 * data_bytes as f64 / self.aggregate_disk_bw())
    }
}

/// One node's device capacities in plain units, decoupled from the
/// queueing models — the capacity context an offline analyzer (exo-prof)
/// needs to turn raw resource samples and I/O events into "fraction of
/// what the hardware could do" without depending on the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCaps {
    /// Concurrent task slots on the node.
    pub cpu_slots: usize,
    /// Aggregate sequential disk bandwidth, bytes/second.
    pub disk_seq_bw: f64,
    /// Random-IOPS ceiling implied by the seek model.
    pub disk_random_iops: f64,
    /// Disk devices (spindles / NVMe channels).
    pub disk_devices: usize,
    /// Per-direction NIC bandwidth, bytes/second.
    pub nic_bw: f64,
    /// Object-store capacity, bytes.
    pub store_bytes: u64,
}

impl NodeSpec {
    /// Capacity card for this node, consumed by offline analysis.
    pub fn caps(&self) -> NodeCaps {
        NodeCaps {
            cpu_slots: self.cpus,
            disk_seq_bw: self.disk.seq_bw,
            disk_random_iops: self.disk.random_iops(),
            disk_devices: self.disk.devices,
            nic_bw: self.nic.bw,
            store_bytes: self.object_store_bytes,
        }
    }
}

/// Per-node capacity cards for a whole cluster, in node-id order.
/// Offline analysis classifies each node's samples against its own entry
/// and uses the `total_*` aggregates for cluster-wide views.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceCaps {
    /// One capacity card per node, indexed by node id.
    pub per_node: Vec<NodeCaps>,
}

impl DeviceCaps {
    /// Capacity card for `n` identical nodes.
    pub fn uniform(node: NodeCaps, n: usize) -> DeviceCaps {
        assert!(n >= 1, "need at least one node");
        DeviceCaps {
            per_node: vec![node; n],
        }
    }

    /// Worker node count.
    pub fn nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Capacity card of node `i`.
    pub fn node(&self, i: usize) -> &NodeCaps {
        &self.per_node[i]
    }

    /// Cluster-wide CPU slot count.
    pub fn total_cpu_slots(&self) -> usize {
        self.per_node.iter().map(|n| n.cpu_slots).sum()
    }

    /// Cluster-wide sequential disk bandwidth, bytes/second.
    pub fn total_disk_seq_bw(&self) -> f64 {
        self.per_node.iter().map(|n| n.disk_seq_bw).sum()
    }

    /// Cluster-wide per-direction NIC bandwidth, bytes/second.
    pub fn total_nic_bw(&self) -> f64 {
        self.per_node.iter().map(|n| n.nic_bw).sum()
    }

    /// Cluster-wide object-store capacity, bytes.
    pub fn total_store_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.store_bytes).sum()
    }
}

impl ClusterSpec {
    /// Capacity card for this cluster, consumed by offline analysis.
    pub fn device_caps(&self) -> DeviceCaps {
        DeviceCaps {
            per_node: self.nodes.iter().map(|n| n.caps()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_preset_matches_paper_figures() {
        let n = NodeSpec::d3_2xlarge();
        assert_eq!(n.cpus, 8);
        // 1100 MiB/s aggregate sequential.
        assert!((n.disk.seq_bw - 1100.0 * MIB).abs() < 1.0);
        // Random IOPS should be seek-bound (~1.5K), far below what the
        // sequential bandwidth could serve for small blocks.
        assert!(n.disk.random_iops() < 2000.0);
    }

    #[test]
    fn ssd_has_vastly_more_iops_than_hdd() {
        let hdd = NodeSpec::d3_2xlarge();
        let ssd = NodeSpec::i3_2xlarge();
        assert!(ssd.disk.random_iops() > 50.0 * hdd.disk.random_iops());
    }

    #[test]
    fn theoretical_sort_time_is_4d_over_b() {
        let c = ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 10);
        let d = 1_000_000_000_000u64; // 1 TB
        let t = c.theoretical_sort_time(d);
        let expect = 4.0 * d as f64 / (10.0 * 1100.0 * MIB);
        assert!((t.as_secs_f64() - expect).abs() < 0.01);
    }

    #[test]
    fn disk_spec_builds_resource_with_device_count() {
        let n = NodeSpec::i3_2xlarge();
        let r = n.disk.build("disk");
        assert_eq!(r.servers(), n.disk.devices);
    }

    #[test]
    fn device_caps_mirror_cluster_spec() {
        let c = ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 4);
        let caps = c.device_caps();
        assert_eq!(caps.nodes(), 4);
        let node = c.node(0);
        for nc in &caps.per_node {
            assert_eq!(nc.cpu_slots, 8);
            assert_eq!(nc.disk_devices, 6);
            assert!((nc.disk_seq_bw - node.disk.seq_bw).abs() < 1.0);
            assert!((nc.nic_bw - node.nic.bw).abs() < 1.0);
            assert_eq!(nc.store_bytes, node.object_store_bytes);
            assert!((nc.disk_random_iops - node.disk.random_iops()).abs() < 1e-6);
        }
        assert!((caps.total_disk_seq_bw() - c.aggregate_disk_bw()).abs() < 1.0);
        assert_eq!(caps.total_cpu_slots(), 32);
        assert!(c.is_homogeneous());
    }

    #[test]
    fn heterogeneous_cluster_keeps_node_order_and_sums_bandwidth() {
        let c = ClusterSpec::mixed_hdd_ssd(2, 3);
        assert_eq!(c.num_nodes(), 5);
        // HDD nodes first, then SSD nodes.
        assert_eq!(c.node(0).disk.devices, 6);
        assert_eq!(c.node(1).disk.devices, 6);
        assert_eq!(c.node(2).disk.devices, 8);
        assert_eq!(c.node(4).disk.devices, 8);
        assert!(!c.is_homogeneous());
        let expect =
            2.0 * NodeSpec::d3_2xlarge().disk.seq_bw + 3.0 * NodeSpec::i3_2xlarge().disk.seq_bw;
        assert!((c.aggregate_disk_bw() - expect).abs() < 1.0);
        let caps = c.device_caps();
        assert_eq!(caps.nodes(), 5);
        assert!(caps.node(0).disk_random_iops < caps.node(4).disk_random_iops);
    }

    #[test]
    fn ml_loader_cluster_puts_trainer_on_node_zero() {
        let c = ClusterSpec::ml_loader(3);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.node(0).cpus, 16); // g4dn.4xlarge trainer
        for i in 1..4 {
            assert_eq!(c.node(i).cpus, 8); // r6i.2xlarge feeders
        }
        assert!(!c.is_homogeneous());
    }
}
