//! Device and node models, with presets for the instance types the paper
//! evaluates on (§5.1.1, §5.2, §5.3).
//!
//! All figures are taken from the paper's own setup description where given,
//! and from public AWS documentation otherwise. They parameterise the
//! [`crate::Resource`] queueing models; the reproduction cares about the
//! *relative* shapes these produce, not absolute seconds.

use crate::resource::Resource;
use crate::time::SimDuration;

/// Disk subsystem of a node: an array of identical devices.
#[derive(Clone, Copy, Debug)]
pub struct DiskSpec {
    /// Number of devices (HDD spindles or NVMe channels) served in parallel.
    pub devices: usize,
    /// Aggregate sequential bandwidth across devices, bytes/second.
    pub seq_bw: f64,
    /// Average random access (seek) latency per device.
    pub seek: SimDuration,
    /// Fixed per-operation overhead (request setup, FS dispatch).
    pub per_op: SimDuration,
}

impl DiskSpec {
    /// Effective random IOPS limit implied by the seek model.
    pub fn random_iops(&self) -> f64 {
        if self.seek == SimDuration::ZERO {
            f64::INFINITY
        } else {
            self.devices as f64 / self.seek.as_secs_f64()
        }
    }

    /// Instantiate the queueing resource for one node's disk array.
    pub fn build(&self, label: impl Into<String>) -> Resource {
        Resource::new(label, self.devices, self.seq_bw, self.seek, self.per_op)
    }
}

/// Network interface of a node. Modelled as two independent directions
/// (full duplex), each a single FIFO server at `bw` bytes/second.
#[derive(Clone, Copy, Debug)]
pub struct NicSpec {
    /// Per-direction bandwidth, bytes/second.
    pub bw: f64,
    /// One-way propagation + stack latency per transfer.
    pub latency: SimDuration,
}

impl NicSpec {
    /// Instantiate one direction of the NIC as a queueing resource.
    pub fn build(&self, label: impl Into<String>) -> Resource {
        Resource::new(label, 1, self.bw, SimDuration::ZERO, self.latency)
    }
}

/// Full description of a worker node.
#[derive(Clone, Copy, Debug)]
pub struct NodeSpec {
    /// CPU cores (= concurrent task slots in the default store mode).
    pub cpus: usize,
    /// Object-store capacity in bytes. Ray defaults to ~30% of node RAM; we
    /// expose it directly so experiments can shrink it (Fig 7 uses 1 GB).
    pub object_store_bytes: u64,
    /// Executor heap memory in bytes (used for OOM modelling in
    /// executor-heap store modes).
    pub heap_bytes: u64,
    /// Disk array.
    pub disk: DiskSpec,
    /// NIC.
    pub nic: NicSpec,
}

const MIB: f64 = 1024.0 * 1024.0;
const GIB: u64 = 1024 * 1024 * 1024;

impl NodeSpec {
    /// `d3.2xlarge` — the paper's HDD node: 8 cores, 64 GiB RAM, 6×HDD with
    /// 1100 MiB/s aggregate sequential throughput, ~6 Gbps network.
    pub fn d3_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 6,
                seq_bw: 1100.0 * MIB,
                // ~4 ms average seek per spindle => ~1.5 K random IOPS/node.
                seek: SimDuration::from_micros(4000),
                per_op: SimDuration::from_micros(100),
            },
            nic: NicSpec {
                bw: 6.0e9 / 8.0, // 6 Gbps sustained
                latency: SimDuration::from_micros(200),
            },
        }
    }

    /// `i3.2xlarge` — the paper's SSD node: 8 cores, 61 GiB RAM, NVMe with
    /// 720 MB/s throughput and 180 K write IOPS, 2.5 Gbps network.
    pub fn i3_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 18 * GIB,
            heap_bytes: 38 * GIB,
            disk: DiskSpec {
                devices: 8, // NVMe queue parallelism
                seq_bw: 720.0 * 1e6,
                // 180 K IOPS across 8 channels => ~44 µs access time.
                seek: SimDuration::from_micros(44),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 2.5e9 / 8.0, // 2.5 Gbps sustained
                latency: SimDuration::from_micros(200),
            },
        }
    }

    /// `r6i.2xlarge` — memory-optimised node used for the online
    /// aggregation experiment (§5.2.1): 8 cores, 64 GiB RAM, EBS-backed.
    pub fn r6i_2xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 1,
                seq_bw: 500.0 * MIB,
                seek: SimDuration::from_micros(500),
                per_op: SimDuration::from_micros(50),
            },
            nic: NicSpec {
                bw: 12.5e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// `g4dn.4xlarge` — single-GPU trainer node for the single-node ML
    /// experiment (§5.2.2): 16 vCPUs, 64 GiB RAM, local NVMe.
    pub fn g4dn_4xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 16,
            object_store_bytes: 20 * GIB,
            heap_bytes: 40 * GIB,
            disk: DiskSpec {
                devices: 4,
                seq_bw: 450.0 * 1e6,
                seek: SimDuration::from_micros(60),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 20.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// `g4dn.xlarge` — the smaller 4-node distributed-training node
    /// (§5.2.2): 4 vCPUs, 16 GiB RAM.
    pub fn g4dn_xlarge() -> NodeSpec {
        NodeSpec {
            cpus: 4,
            object_store_bytes: 5 * GIB,
            heap_bytes: 10 * GIB,
            disk: DiskSpec {
                devices: 2,
                seq_bw: 225.0 * 1e6,
                seek: SimDuration::from_micros(60),
                per_op: SimDuration::from_micros(20),
            },
            nic: NicSpec {
                bw: 5.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// A single-node, 32-vCPU, 244 GB machine matching the Dask-vs-Ray
    /// comparison setup (§5.3.1).
    pub fn dask_comparison_node() -> NodeSpec {
        NodeSpec {
            cpus: 32,
            object_store_bytes: 73 * GIB, // ~30% of 244 GB
            heap_bytes: 171 * GIB,
            disk: DiskSpec {
                devices: 2,
                seq_bw: 400.0 * MIB,
                seek: SimDuration::from_micros(100),
                per_op: SimDuration::from_micros(30),
            },
            nic: NicSpec {
                bw: 10.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }

    /// An `sc1`-style cold HDD volume on a small node — the slow disk used
    /// by the spilling microbenchmark (§5.3.2, Fig 7).
    pub fn sc1_microbench_node() -> NodeSpec {
        NodeSpec {
            cpus: 8,
            object_store_bytes: GIB, // the experiment's 1 GB store
            heap_bytes: 16 * GIB,
            disk: DiskSpec {
                devices: 1,
                seq_bw: 90.0 * MIB, // sc1 baseline throughput
                seek: SimDuration::from_millis(12),
                per_op: SimDuration::from_micros(100),
            },
            nic: NicSpec {
                bw: 10.0e9 / 8.0,
                latency: SimDuration::from_micros(150),
            },
        }
    }
}

/// A homogeneous cluster: `n` identical nodes.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Per-node hardware description.
    pub node: NodeSpec,
    /// Number of worker nodes.
    pub nodes: usize,
}

impl ClusterSpec {
    /// Build a cluster of `nodes` copies of `node`.
    pub fn homogeneous(node: NodeSpec, nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec { node, nodes }
    }

    /// Aggregate sequential disk bandwidth of the cluster, bytes/second.
    pub fn aggregate_disk_bw(&self) -> f64 {
        self.node.disk.seq_bw * self.nodes as f64
    }

    /// The paper's theoretical external-sort lower bound `T = 4D / B`
    /// (§5.1.1): every byte is read twice and written twice against the
    /// aggregate disk bandwidth `B`.
    pub fn theoretical_sort_time(&self, data_bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(4.0 * data_bytes as f64 / self.aggregate_disk_bw())
    }
}

/// Per-node device capacities in plain units, decoupled from the
/// queueing models — the capacity context an offline analyzer (exo-prof)
/// needs to turn raw resource samples and I/O events into "fraction of
/// what the hardware could do" without depending on the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceCaps {
    /// Worker node count.
    pub nodes: usize,
    /// Concurrent task slots per node.
    pub cpu_slots: usize,
    /// Aggregate sequential disk bandwidth per node, bytes/second.
    pub disk_seq_bw: f64,
    /// Random-IOPS ceiling per node implied by the seek model.
    pub disk_random_iops: f64,
    /// Disk devices per node (spindles / NVMe channels).
    pub disk_devices: usize,
    /// Per-direction NIC bandwidth per node, bytes/second.
    pub nic_bw: f64,
    /// Object-store capacity per node, bytes.
    pub store_bytes: u64,
}

impl ClusterSpec {
    /// Capacity card for this cluster, consumed by offline analysis.
    pub fn device_caps(&self) -> DeviceCaps {
        DeviceCaps {
            nodes: self.nodes,
            cpu_slots: self.node.cpus,
            disk_seq_bw: self.node.disk.seq_bw,
            disk_random_iops: self.node.disk.random_iops(),
            disk_devices: self.node.disk.devices,
            nic_bw: self.node.nic.bw,
            store_bytes: self.node.object_store_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_preset_matches_paper_figures() {
        let n = NodeSpec::d3_2xlarge();
        assert_eq!(n.cpus, 8);
        // 1100 MiB/s aggregate sequential.
        assert!((n.disk.seq_bw - 1100.0 * MIB).abs() < 1.0);
        // Random IOPS should be seek-bound (~1.5K), far below what the
        // sequential bandwidth could serve for small blocks.
        assert!(n.disk.random_iops() < 2000.0);
    }

    #[test]
    fn ssd_has_vastly_more_iops_than_hdd() {
        let hdd = NodeSpec::d3_2xlarge();
        let ssd = NodeSpec::i3_2xlarge();
        assert!(ssd.disk.random_iops() > 50.0 * hdd.disk.random_iops());
    }

    #[test]
    fn theoretical_sort_time_is_4d_over_b() {
        let c = ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 10);
        let d = 1_000_000_000_000u64; // 1 TB
        let t = c.theoretical_sort_time(d);
        let expect = 4.0 * d as f64 / (10.0 * 1100.0 * MIB);
        assert!((t.as_secs_f64() - expect).abs() < 0.01);
    }

    #[test]
    fn disk_spec_builds_resource_with_device_count() {
        let n = NodeSpec::i3_2xlarge();
        let r = n.disk.build("disk");
        assert_eq!(r.servers(), n.disk.devices);
    }

    #[test]
    fn device_caps_mirror_cluster_spec() {
        let c = ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 4);
        let caps = c.device_caps();
        assert_eq!(caps.nodes, 4);
        assert_eq!(caps.cpu_slots, 8);
        assert_eq!(caps.disk_devices, 6);
        assert!((caps.disk_seq_bw - c.node.disk.seq_bw).abs() < 1.0);
        assert!((caps.nic_bw - c.node.nic.bw).abs() < 1.0);
        assert_eq!(caps.store_bytes, c.node.object_store_bytes);
        assert!((caps.disk_random_iops - c.node.disk.random_iops()).abs() < 1e-6);
    }
}
