//! Event-queue microbenches: the hierarchical calendar queue
//! (`exo_sim::EventQueue`) against the plain binary heap it replaced,
//! on the schedule shapes the engine actually produces.
//!
//! Patterns:
//! - `uniform`: short delays within the ring horizon (transfer/CPU
//!   churn), heavy tie density.
//! - `bursty`: mostly short delays with occasional seconds-ahead
//!   completions (disk writes), exercising the far heap and horizon
//!   pulls.
//! - `sparse`: milliseconds-apart events at low queue depth, the
//!   bucket-rotation worst case for a calendar queue.
//!
//! Run with `cargo bench -p exo-sim --bench queue`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use exo_sim::{EventQueue, SimTime};

/// The pre-refactor queue: one binary heap over the whole pending set.
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    event: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
    fn schedule_at(&mut self, at: SimTime, event: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }
}

/// Deterministic splitmix-style generator (benches must be reproducible
/// without ambient RNG).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
}

const OPS: u64 = 100_000;

/// Drives a queue through `OPS` mixed operations (~2 schedules per
/// pop, like the engine) with delays drawn from `spread`, then drains.
macro_rules! drive {
    ($queue:expr, $spread:expr) => {{
        let mut q = $queue;
        let spread = $spread;
        let mut rng = Lcg(1);
        let mut now = 0u64;
        let mut acc = 0u64;
        for id in 0..OPS {
            let r = rng.next();
            if r % 3 != 0 {
                q.schedule_at(SimTime(now + spread(rng.next())), id);
            } else if let Some((t, e)) = q.pop() {
                now = now.max(t.0);
                acc = acc.wrapping_add(e);
            }
        }
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        acc
    }};
}

fn uniform(r: u64) -> u64 {
    r % 4_096
}

fn bursty(r: u64) -> u64 {
    if r.is_multiple_of(16) {
        1_000_000 + r % 5_000_000
    } else {
        r % 256
    }
}

fn sparse(r: u64) -> u64 {
    1_000 + r % 20_000
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(OPS));
    for (name, spread) in [
        ("uniform", uniform as fn(u64) -> u64),
        ("bursty", bursty),
        ("sparse", sparse),
    ] {
        g.bench_function(format!("calendar/{name}"), |b| {
            b.iter(|| black_box(drive!(EventQueue::new(), spread)))
        });
        g.bench_function(format!("heap/{name}"), |b| {
            b.iter(|| black_box(drive!(HeapQueue::new(), spread)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
