//! Timestamped metrics snapshots and their JSONL serialization.
//!
//! One snapshot is one line of the `--live` timeseries. Counters are
//! carried twice: `counters` is the cumulative [`TraceCounters`] fold at
//! snapshot time (the final line equals the run's `RtMetrics` exactly),
//! and `delta` is the change since the previous line — so summing every
//! line's `delta` also reproduces the final counters, the live analogue
//! of `fold_matches_incremental_counters`.

use exo_trace::{Json, TraceCounters};

use crate::bounds::{BoundKind, NodeWindow};
use crate::sketch::QuantileSketch;

/// Fixed percentile summary of one sketch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SketchStat {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
}

impl SketchStat {
    pub fn of(s: &QuantileSketch) -> SketchStat {
        SketchStat {
            count: s.count(),
            mean_us: s.mean(),
            p50_us: s.quantile(0.50),
            p99_us: s.quantile(0.99),
            p999_us: s.quantile(0.999),
            max_us: s.max(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("mean_us", self.mean_us)
            .set("p50_us", self.p50_us)
            .set("p99_us", self.p99_us)
            .set("p999_us", self.p999_us)
            .set("max_us", self.max_us)
    }
}

/// One stage's line in a snapshot: cumulative execution percentiles
/// plus its share of the recent window's compute.
#[derive(Debug, Clone)]
pub struct StageStat {
    pub label: &'static str,
    /// Tasks finished so far (cumulative).
    pub finished: u64,
    /// Execution µs that overlapped the sliding window.
    pub window_busy_us: u64,
    pub exec: SketchStat,
}

/// One tenant's cumulative line in a snapshot. Only populated when the
/// run has seen more than one tenant (multi-tenant service mode), so
/// single-job timeseries stay byte-identical with pre-multi-job output.
#[derive(Debug, Clone, Copy)]
pub struct TenantStat {
    pub tenant: u32,
    /// Tasks finished so far across all the tenant's jobs (cumulative).
    pub tasks_finished: u64,
    /// Total execution time (started → finished) so far, µs.
    pub exec_us: u64,
}

/// One line of the live timeseries.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Virtual time the snapshot was taken (strictly monotonic across a
    /// series).
    pub at_us: u64,
    /// Cumulative counter fold at `at_us`.
    pub counters: TraceCounters,
    /// Change since the previous snapshot (equals `counters` on the
    /// first line).
    pub delta: TraceCounters,
    /// Sliding-window bound profile, one entry per node.
    pub nodes: Vec<NodeWindow>,
    pub stages: Vec<StageStat>,
    /// Per-tenant cumulative work; empty unless >1 tenant was observed.
    pub tenants: Vec<TenantStat>,
    pub task_us: SketchStat,
    pub fetch_wait_us: SketchStat,
    pub queue_us: SketchStat,
}

pub fn counters_to_json(c: &TraceCounters) -> Json {
    Json::obj()
        .set("tasks_completed", c.tasks_completed)
        .set("tasks_reexecuted", c.tasks_reexecuted)
        .set("net_bytes", c.net_bytes)
        .set("net_ops", c.net_ops)
        .set("disk_read_bytes", c.disk_read_bytes)
        .set("disk_write_bytes", c.disk_write_bytes)
        .set("objects_reconstructed", c.objects_reconstructed)
        .set("node_failures", c.node_failures)
        .set("executor_failures", c.executor_failures)
}

/// Parses a counters object rendered by [`counters_to_json`]. Every
/// field must be present — a silent default would defeat the
/// bit-for-bit cross-checks built on this.
pub fn counters_from_json(j: &Json) -> Result<TraceCounters, String> {
    let field = |k: &str| -> Result<u64, String> {
        match j.get(k) {
            Some(Json::U64(n)) => Ok(*n),
            other => Err(format!("counters field {k:?}: expected u64, got {other:?}")),
        }
    };
    Ok(TraceCounters {
        tasks_completed: field("tasks_completed")?,
        tasks_reexecuted: field("tasks_reexecuted")?,
        net_bytes: field("net_bytes")?,
        net_ops: field("net_ops")?,
        disk_read_bytes: field("disk_read_bytes")?,
        disk_write_bytes: field("disk_write_bytes")?,
        objects_reconstructed: field("objects_reconstructed")?,
        node_failures: field("node_failures")?,
        executor_failures: field("executor_failures")?,
    })
}

impl MetricsSnapshot {
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut o = Json::obj()
                    .set("node", n.node)
                    .set("dominant", n.dominant.name());
                for (k, f) in BoundKind::ALL.iter().zip(n.fractions) {
                    o = o.set(k.name(), f);
                }
                o.set("cpu_util", n.cpu_util)
                    .set("disk_util", n.disk_util)
                    .set("net_util", n.net_util)
                    .set("store_frac", n.store_frac)
            })
            .collect::<Vec<_>>();
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj()
                    .set("label", s.label)
                    .set("finished", s.finished)
                    .set("window_busy_us", s.window_busy_us)
                    .set("exec", s.exec.to_json())
            })
            .collect::<Vec<_>>();
        let mut doc = Json::obj()
            .set("at_us", self.at_us)
            .set("counters", counters_to_json(&self.counters))
            .set("delta", counters_to_json(&self.delta))
            .set("nodes", nodes)
            .set("stages", stages);
        if !self.tenants.is_empty() {
            let tenants = self
                .tenants
                .iter()
                .map(|t| {
                    Json::obj()
                        .set("tenant", t.tenant)
                        .set("tasks_finished", t.tasks_finished)
                        .set("exec_us", t.exec_us)
                })
                .collect::<Vec<_>>();
            doc = doc.set("tenants", tenants);
        }
        doc.set("task_us", self.task_us.to_json())
            .set("fetch_wait_us", self.fetch_wait_us.to_json())
            .set("queue_us", self.queue_us.to_json())
    }

    /// The single-line live progress printout.
    pub fn progress_line(&self) -> String {
        let dominant = self
            .nodes
            .iter()
            .map(|n| n.dominant)
            .fold(std::collections::HashMap::new(), |mut m, d| {
                *m.entry(d.name()).or_insert(0usize) += 1;
                m
            })
            .into_iter()
            .max_by_key(|(name, n)| (*n, std::cmp::Reverse(*name)))
            .map(|(name, _)| name)
            .unwrap_or("idle");
        format!(
            "[live] t={:.2}s tasks={} (+{}) net={:.2} GB disk r/w={:.2}/{:.2} GB p50/p99(task)={:.1}/{:.1} ms bound={}",
            self.at_us as f64 / 1e6,
            self.counters.tasks_completed,
            self.delta.tasks_completed,
            self.counters.net_bytes as f64 / 1e9,
            self.counters.disk_read_bytes as f64 / 1e9,
            self.counters.disk_write_bytes as f64 / 1e9,
            self.task_us.p50_us as f64 / 1e3,
            self.task_us.p99_us as f64 / 1e3,
            dominant,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_through_json() {
        let c = TraceCounters {
            tasks_completed: 12,
            tasks_reexecuted: 1,
            net_bytes: u64::MAX - 7,
            net_ops: 3,
            disk_read_bytes: 4,
            disk_write_bytes: 5,
            objects_reconstructed: 6,
            node_failures: 0,
            executor_failures: 2,
        };
        let j = Json::parse(&counters_to_json(&c).render()).expect("parse");
        assert_eq!(counters_from_json(&j).expect("fields"), c);
    }

    #[test]
    fn counters_parse_rejects_missing_fields() {
        let j = Json::obj().set("tasks_completed", 1u64);
        assert!(counters_from_json(&j).is_err());
    }

    #[test]
    fn snapshot_renders_single_line_json() {
        let snap = MetricsSnapshot {
            at_us: 5,
            counters: TraceCounters::default(),
            delta: TraceCounters::default(),
            nodes: Vec::new(),
            stages: Vec::new(),
            tenants: Vec::new(),
            task_us: SketchStat::default(),
            fetch_wait_us: SketchStat::default(),
            queue_us: SketchStat::default(),
        };
        let line = snap.to_json().render();
        assert!(!line.contains('\n'));
        let parsed = Json::parse(&line).expect("valid json");
        assert_eq!(parsed.get("at_us").and_then(Json::as_f64), Some(5.0));
        assert!(parsed.get("counters").is_some());
        assert!(!snap.progress_line().is_empty());
    }
}
