//! Rolling per-node / per-stage bound profiles over a sliding
//! virtual-time window.
//!
//! The same classification exo-prof runs offline (utilisation against
//! [`NodeCaps`], near-capacity threshold, alloc-stall detection), but
//! computed incrementally over a ring of fixed-width buckets so it can
//! be queried *mid-run* — the hook a future adaptive `PlacementPolicy`
//! needs. Memory is O(nodes × buckets + stages × buckets), independent
//! of event count.
//!
//! Transfers are emitted at submit time, and staging submits whole
//! stages in bursts; like the offline attribution, a per-source FIFO
//! transmit cursor replays when each transfer actually occupied the
//! wire and the bytes are smeared over that service window. Credits
//! that would land more than one window ahead of the newest bucket are
//! clamped into the furthest allowed bucket (the ring holds two windows
//! so future credits never collide with readable history).

use std::collections::HashMap;

use exo_sim::DeviceCaps;
#[allow(unused_imports)] // doc links
use exo_sim::NodeCaps;
use exo_trace::{Event, EventKind, ObjectPhase, TaskPhase};

/// What a window bucket was limited by (mirrors exo-prof's `Bound`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    Cpu,
    Disk,
    Net,
    AllocStall,
    Idle,
}

impl BoundKind {
    pub fn name(&self) -> &'static str {
        match self {
            BoundKind::Cpu => "cpu",
            BoundKind::Disk => "disk",
            BoundKind::Net => "net",
            BoundKind::AllocStall => "alloc-stall",
            BoundKind::Idle => "idle",
        }
    }

    pub const ALL: [BoundKind; 5] = [
        BoundKind::Disk,
        BoundKind::Net,
        BoundKind::Cpu,
        BoundKind::AllocStall,
        BoundKind::Idle,
    ];
}

/// Same thresholds as exo-prof's offline attribution, so the live view
/// and the post-hoc report agree on what "bound" means.
const BOUND_THRESHOLD: f64 = 0.4;
const STORE_FULL_FRAC: f64 = 0.95;

#[derive(Debug, Default, Clone, Copy)]
struct Bucket {
    /// Absolute bucket number this slot currently holds (ring tag).
    epoch: u64,
    cpu_busy: f64,
    cpu_total: f64,
    samples: u64,
    disk_bytes: u64,
    net_bytes: u64,
    spill_ops: u64,
    store_peak: u64,
}

/// One node's view of the sliding window at snapshot time.
#[derive(Debug, Clone)]
pub struct NodeWindow {
    pub node: u32,
    pub dominant: BoundKind,
    /// Fraction of window buckets classified as each of
    /// [`BoundKind::ALL`], in that order; sums to 1.
    pub fractions: [f64; 5],
    /// Window means of the underlying utilisations.
    pub cpu_util: f64,
    pub disk_util: f64,
    pub net_util: f64,
    pub store_frac: f64,
}

/// One stage's share of recent compute.
#[derive(Debug, Clone)]
pub struct StageWindow {
    pub label: &'static str,
    /// Task-execution microseconds that overlapped the window.
    pub busy_us: u64,
    /// Tasks of this stage that finished inside the window.
    pub finished: u64,
}

/// Sliding-window bound profiler. Feed it events (it implements the
/// sink's `Observer` through `LiveRecorder`), then call
/// [`RollingBounds::snapshot`] at any virtual time.
#[derive(Debug)]
pub struct RollingBounds {
    caps: DeviceCaps,
    bucket_us: u64,
    /// Buckets per window (the readable span). The ring holds `2×` this
    /// so FIFO-smeared future credits never overwrite readable history.
    window: usize,
    /// Per-node ring, `ring[node * ring_len + (bucket % ring_len)]`.
    ring: Vec<Bucket>,
    /// Per-stage execution-time ring, same geometry as `ring`.
    stage_ring: HashMap<&'static str, Vec<StageBucket>>,
    /// Per-source-node FIFO transmit cursor (µs).
    tx_free: Vec<u64>,
    /// Carry-forward store level per node (occupancy persists between
    /// samples).
    store_level: Vec<u64>,
    /// Carry-forward CPU occupancy per node.
    cpu_level: Vec<f64>,
    /// Open task spans: task id → (started_us, label).
    open: HashMap<u64, (u64, &'static str)>,
    /// Newest absolute bucket any *emission-time* event landed in.
    cur: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct StageBucket {
    epoch: u64,
    busy_us: u64,
    finished: u64,
}

impl RollingBounds {
    pub fn new(caps: &DeviceCaps, window_us: u64, window_buckets: usize) -> RollingBounds {
        let window = window_buckets.max(1);
        let bucket_us = (window_us / window as u64).max(1);
        let nodes = caps.nodes();
        RollingBounds {
            caps: caps.clone(),
            bucket_us,
            window,
            ring: vec![Bucket::default(); nodes * window * 2],
            stage_ring: HashMap::new(),
            tx_free: vec![0; nodes],
            store_level: vec![0; nodes],
            cpu_level: vec![0.0; nodes],
            open: HashMap::new(),
            cur: 0,
        }
    }

    pub fn bucket_us(&self) -> u64 {
        self.bucket_us
    }

    pub fn window_us(&self) -> u64 {
        self.bucket_us * self.window as u64
    }

    fn ring_len(&self) -> usize {
        self.window * 2
    }

    /// Mutable access to the slot for absolute bucket `b` on `node`,
    /// retagging (and zeroing) the slot if it still holds an older
    /// bucket. `b` is clamped to the ring's writable range
    /// `[cur − window + 1, cur + window]`.
    fn slot(&mut self, node: usize, b: u64) -> &mut Bucket {
        self.cur = self.cur.max(b.min(self.cur + self.window as u64));
        let lo = self.cur.saturating_sub(self.window as u64 - 1);
        let hi = self.cur + self.window as u64;
        let b = b.clamp(lo, hi);
        let len = self.ring_len();
        let slot = &mut self.ring[node * len + (b % len as u64) as usize];
        if slot.epoch != b {
            *slot = Bucket {
                epoch: b,
                ..Bucket::default()
            };
        }
        slot
    }

    fn stage_slot(&mut self, label: &'static str, b: u64) -> &mut StageBucket {
        let len = self.ring_len();
        let window = self.window as u64;
        let b = b.clamp(self.cur.saturating_sub(window - 1), self.cur + window);
        let ring = self
            .stage_ring
            .entry(label)
            .or_insert_with(|| vec![StageBucket::default(); len]);
        let slot = &mut ring[(b % len as u64) as usize];
        if slot.epoch != b {
            *slot = StageBucket {
                epoch: b,
                ..StageBucket::default()
            };
        }
        slot
    }

    pub fn on_event(&mut self, ev: &Event) {
        let b = ev.at_us / self.bucket_us;
        self.cur = self.cur.max(b);
        let nodes = self.caps.nodes();
        match &ev.kind {
            EventKind::Resource(r) if (r.node as usize) < nodes => {
                let node = r.node as usize;
                let busy = r.cpu_slots_busy as f64;
                let total = r.cpu_slots_total.max(1) as f64;
                let store = r.store_used;
                self.cpu_level[node] = busy / total;
                self.store_level[node] = store;
                let slot = self.slot(node, b);
                slot.cpu_busy += busy;
                slot.cpu_total += total;
                slot.samples += 1;
                slot.store_peak = slot.store_peak.max(store);
            }
            EventKind::Io(io) if (io.node as usize) < nodes => {
                self.slot(io.node as usize, b).disk_bytes += io.bytes;
            }
            EventKind::Object(o) => match o.phase {
                ObjectPhase::Transferred => self.on_transfer(ev.at_us, o.node, o.src, o.bytes),
                ObjectPhase::Spilled | ObjectPhase::Restored | ObjectPhase::Fallback
                    if (o.node as usize) < nodes =>
                {
                    self.slot(o.node as usize, b).spill_ops += 1;
                }
                _ => {}
            },
            EventKind::Task(t) => match t.phase {
                TaskPhase::Started => {
                    self.open.insert(t.task, (ev.at_us, t.label));
                }
                TaskPhase::Finished => {
                    if let Some((started, label)) = self.open.remove(&t.task) {
                        self.on_stage_exec(label, started, ev.at_us);
                    }
                }
                _ => {}
            },
            // Deps, fetch-waits, failures, and incident edges carry no
            // device occupancy; enumerated so a new variant is a compile
            // error. (Out-of-range Resource/Io nodes fall here via their
            // guards — there is no bucket to credit them to.)
            EventKind::Resource(_)
            | EventKind::Io(_)
            | EventKind::Dep(_)
            | EventKind::FetchWait(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_)
            | EventKind::Job(_) => {}
        }
    }

    /// Smears a transfer's bytes over its FIFO service window on the
    /// sender's wire, credited to both endpoints' buckets.
    fn on_transfer(&mut self, at_us: u64, dst: u32, src: Option<u32>, bytes: u64) {
        let nodes = self.caps.nodes();
        let (start, end) = match src.filter(|s| (*s as usize) < nodes) {
            Some(s) => {
                let bw = self.caps.per_node[s as usize].nic_bw.max(1.0);
                let start = at_us.max(self.tx_free[s as usize]);
                let end = start + ((bytes as f64 * 1e6 / bw).ceil() as u64).max(1);
                self.tx_free[s as usize] = end;
                (start, end)
            }
            None => (at_us, at_us + 1),
        };
        let dur = end - start;
        let (b0, b1) = (start / self.bucket_us, (end - 1) / self.bucket_us);
        for b in b0..=b1 {
            let s = (b * self.bucket_us).max(start);
            let e = ((b + 1) * self.bucket_us).min(end);
            let share = (bytes as u128 * (e - s) as u128 / dur as u128) as u64;
            if let Some(s) = src.filter(|s| (*s as usize) < nodes) {
                self.slot(s as usize, b).net_bytes += share;
            }
            if (dst as usize) < nodes && src != Some(dst) {
                self.slot(dst as usize, b).net_bytes += share;
            }
        }
    }

    /// Credits a finished task's execution time to its stage's buckets,
    /// clamped to the window.
    fn on_stage_exec(&mut self, label: &'static str, started: u64, finished: u64) {
        let lo_bucket = self.cur.saturating_sub(self.window as u64 - 1);
        let started = started.max(lo_bucket * self.bucket_us);
        let finished = finished.max(started + 1);
        let (b0, b1) = (started / self.bucket_us, (finished - 1) / self.bucket_us);
        for b in b0..=b1 {
            let s = (b * self.bucket_us).max(started);
            let e = ((b + 1) * self.bucket_us).min(finished);
            let slot = self.stage_slot(label, b);
            slot.busy_us += e - s;
            if b == b1 {
                slot.finished += 1;
            }
        }
    }

    /// Classifies the window ending at `now_us`, one entry per node.
    /// Queryable mid-run (this is the adaptive-placement hook) and at
    /// snapshot ticks.
    pub fn snapshot(&self, now_us: u64) -> Vec<NodeWindow> {
        let now_b = now_us / self.bucket_us;
        let lo = now_b.saturating_sub(self.window as u64 - 1);
        let len = self.ring_len();
        let bucket_secs = self.bucket_us as f64 / 1e6;
        let mut out = Vec::with_capacity(self.caps.nodes());
        for (node, caps) in self.caps.per_node.iter().enumerate() {
            let mut counts = [0usize; 5];
            let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64); // cpu, disk, net, store
            let mut buckets = 0usize;
            // Occupancy carries forward across unsampled buckets inside
            // the window, seeded from the node's last known level when
            // the window has no sample at all yet.
            let mut cpu_carry = self.cpu_level[node];
            let mut store_carry = self.store_level[node];
            for b in lo..=now_b {
                let slot = &self.ring[node * len + (b % len as u64) as usize];
                let present = slot.epoch == b;
                let cpu_util = if present && slot.samples > 0 {
                    slot.cpu_busy / slot.cpu_total.max(1.0)
                } else {
                    cpu_carry
                };
                cpu_carry = cpu_util;
                let store_used = if present && slot.samples > 0 {
                    slot.store_peak
                } else {
                    store_carry
                };
                store_carry = store_used;
                let (disk_bytes, net_bytes, spill_ops) = if present {
                    (slot.disk_bytes, slot.net_bytes, slot.spill_ops)
                } else {
                    (0, 0, 0)
                };
                let disk_util = disk_bytes as f64 / (caps.disk_seq_bw * bucket_secs).max(1.0);
                let net_util = net_bytes as f64 / (caps.nic_bw * bucket_secs).max(1.0);
                let store_frac = (store_used as f64 / caps.store_bytes.max(1) as f64).min(1.0);

                let bound = if store_frac >= STORE_FULL_FRAC && spill_ops > 0 {
                    BoundKind::AllocStall
                } else {
                    let scored = [
                        (BoundKind::Disk, disk_util),
                        (BoundKind::Net, net_util),
                        (BoundKind::Cpu, cpu_util),
                    ];
                    scored
                        .into_iter()
                        .filter(|(_, u)| *u >= BOUND_THRESHOLD)
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .map(|(k, _)| k)
                        .unwrap_or(BoundKind::Idle)
                };
                counts[BoundKind::ALL
                    .iter()
                    .position(|k| *k == bound)
                    .expect("in ALL")] += 1;
                sums.0 += cpu_util;
                sums.1 += disk_util;
                sums.2 += net_util;
                sums.3 += store_frac;
                buckets += 1;
            }
            let n = buckets.max(1) as f64;
            let fractions: [f64; 5] =
                std::array::from_fn(|i| counts[i] as f64 / buckets.max(1) as f64);
            let dominant = BoundKind::ALL
                .into_iter()
                .zip(fractions)
                .filter(|(k, f)| *k != BoundKind::Idle && *f > 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(k, _)| k)
                .unwrap_or(BoundKind::Idle);
            out.push(NodeWindow {
                node: node as u32,
                dominant,
                fractions,
                cpu_util: sums.0 / n,
                disk_util: sums.1 / n,
                net_util: sums.2 / n,
                store_frac: sums.3 / n,
            });
        }
        out
    }

    /// Per-stage compute share of the window ending at `now_us`, sorted
    /// by busy time descending.
    pub fn stage_snapshot(&self, now_us: u64) -> Vec<StageWindow> {
        let now_b = now_us / self.bucket_us;
        let lo = now_b.saturating_sub(self.window as u64 - 1);
        let len = self.ring_len();
        let mut out: Vec<StageWindow> = self
            .stage_ring
            .iter()
            .map(|(label, ring)| {
                let (mut busy, mut finished) = (0u64, 0u64);
                for b in lo..=now_b {
                    let slot = &ring[(b % len as u64) as usize];
                    if slot.epoch == b {
                        busy += slot.busy_us;
                        finished += slot.finished;
                    }
                }
                StageWindow {
                    label,
                    busy_us: busy,
                    finished,
                }
            })
            .filter(|s| s.busy_us > 0 || s.finished > 0)
            .collect();
        out.sort_by(|a, b| b.busy_us.cmp(&a.busy_us).then(a.label.cmp(b.label)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{IoDir, IoEvent, ObjectEvent, ResourceSample, TaskSpan};

    fn caps() -> DeviceCaps {
        DeviceCaps::uniform(
            NodeCaps {
                cpu_slots: 8,
                disk_seq_bw: 1e9,
                disk_random_iops: 1500.0,
                disk_devices: 6,
                nic_bw: 1e9,
                store_bytes: 1_000_000,
            },
            2,
        )
    }

    fn io(node: u32, at_us: u64, bytes: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Io(IoEvent {
                node,
                dir: IoDir::Write,
                bytes,
            }),
        }
    }

    fn sample(node: u32, at_us: u64, busy: u32, store: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Resource(ResourceSample {
                node,
                cpu_slots_busy: busy,
                cpu_slots_total: 8,
                store_used: store,
                disk_queue_depth: 0,
                nic_bytes_in_flight: 0,
            }),
        }
    }

    fn rb() -> RollingBounds {
        // 10 buckets × 100 µs = 1 ms window.
        RollingBounds::new(&caps(), 1000, 10)
    }

    #[test]
    fn saturated_disk_reads_disk_bound() {
        let mut r = rb();
        // 1 GB/s × 100 µs bucket = 100 KB capacity; write 200 KB/bucket.
        for i in 0..10u64 {
            r.on_event(&io(0, i * 100 + 5, 200_000));
        }
        let w = r.snapshot(995);
        assert_eq!(w[0].dominant, BoundKind::Disk);
        assert!(w[0].disk_util > 1.0);
        assert_eq!(w[1].dominant, BoundKind::Idle, "node 1 saw nothing");
    }

    #[test]
    fn old_buckets_slide_out_of_the_window() {
        let mut r = rb();
        for i in 0..10u64 {
            r.on_event(&io(0, i * 100 + 5, 200_000));
        }
        assert_eq!(r.snapshot(995)[0].dominant, BoundKind::Disk);
        // Two windows later with no traffic: all idle again.
        r.on_event(&sample(0, 3000, 0, 0));
        let w = r.snapshot(3000);
        assert_eq!(w[0].dominant, BoundKind::Idle);
        assert!(w[0].disk_util < 1e-9);
    }

    #[test]
    fn busy_cpu_carries_forward_between_samples() {
        let mut r = rb();
        r.on_event(&sample(0, 50, 8, 0));
        // No further samples; occupancy persists across the window.
        let w = r.snapshot(950);
        assert_eq!(w[0].dominant, BoundKind::Cpu);
        assert!(w[0].cpu_util > 0.9);
    }

    #[test]
    fn full_store_with_spill_is_alloc_stall() {
        let mut r = rb();
        r.on_event(&sample(0, 50, 1, 999_000));
        r.on_event(&Event {
            at_us: 60,
            kind: EventKind::Object(ObjectEvent {
                object: 1,
                phase: ObjectPhase::Spilled,
                node: 0,
                src: None,
                bytes: 1000,
            }),
        });
        let w = r.snapshot(99);
        assert_eq!(w[0].dominant, BoundKind::AllocStall);
    }

    #[test]
    fn transfer_smears_over_service_window_on_both_endpoints() {
        let mut r = rb();
        // 1 GB/s wire: 500 KB takes 500 µs = 5 buckets from t=0.
        r.on_event(&Event {
            at_us: 0,
            kind: EventKind::Object(ObjectEvent {
                object: 1,
                phase: ObjectPhase::Transferred,
                node: 1,
                src: Some(0),
                bytes: 500_000,
            }),
        });
        let w = r.snapshot(499);
        for nw in &w {
            assert_eq!(nw.dominant, BoundKind::Net, "node {}", nw.node);
            assert!(nw.net_util > 0.4);
        }
    }

    #[test]
    fn stage_exec_time_lands_in_stage_windows() {
        let mut r = rb();
        let span = |phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task: 7,
                phase,
                node: 0,
                label: "map",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        };
        r.on_event(&span(TaskPhase::Started, 100));
        r.on_event(&span(TaskPhase::Finished, 400));
        let stages = r.stage_snapshot(500);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].label, "map");
        assert_eq!(stages[0].busy_us, 300);
        assert_eq!(stages[0].finished, 1);
        // A window later it has slid out.
        assert!(r.stage_snapshot(5000).is_empty());
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = rb();
        r.on_event(&io(0, 105, 200_000));
        r.on_event(&sample(1, 205, 8, 0));
        for w in r.snapshot(900) {
            let sum: f64 = w.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
