//! # exo-live — streaming, fixed-memory observability
//!
//! Where `exo-prof` analyzes a *retained* trace after the run, this
//! crate watches the trace stream *as it happens* through the sink's
//! [`Observer`] hook and keeps only fixed-size aggregates:
//!
//! - [`RollingBounds`] — sliding virtual-time window of per-node
//!   cpu/disk/net/alloc-stall/idle attribution against [`NodeCaps`],
//!   queryable mid-run (the hook an adaptive placement policy needs).
//! - [`LatencySketches`] — deterministic log-bucketed histograms
//!   ([`QuantileSketch`]) of task durations, fetch-wait times, and
//!   queue delays: p50/p99/p999 without retaining events.
//! - [`MetricsSnapshot`] — the runtime folds both into a timestamped
//!   snapshot every `snapshot_interval_us` of virtual time, appended to
//!   a JSONL timeseries ([`LiveSeries`]).
//!
//! Memory is O(nodes × buckets + stages × buckets + sketch buckets),
//! independent of event count — it works with full trace retention off,
//! which is the point: CloudSort-scale runs cannot afford O(events)
//! anything.

pub mod bounds;
pub mod sketch;
pub mod snapshot;

pub use bounds::{BoundKind, NodeWindow, RollingBounds, StageWindow};
pub use sketch::{BaselineSketch, LatencySketches, QuantileSketch, RELATIVE_ERROR};
pub use snapshot::{
    counters_from_json, counters_to_json, MetricsSnapshot, SketchStat, StageStat, TenantStat,
};

use std::sync::{Arc, Mutex};

use exo_sim::DeviceCaps;
#[allow(unused_imports)] // doc links
use exo_sim::NodeCaps;
use exo_trace::{Event, Json, Observer, TraceCounters};

/// Live-observability knobs, carried on `RtConfig` next to
/// `TraceConfig`. All times are virtual.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Interval between `MetricsSnapshot` emissions (µs).
    pub snapshot_interval_us: u64,
    /// Span of the rolling bound-profile window (µs).
    pub window_us: u64,
    /// Buckets per window; memory scales with this, resolution too.
    pub window_buckets: usize,
    /// Print a one-line progress summary at each snapshot (stderr).
    pub progress: bool,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            snapshot_interval_us: 250_000,
            window_us: 2_000_000,
            window_buckets: 20,
            progress: false,
        }
    }
}

/// The composite observer state: rolling bounds + latency sketches +
/// an independent counter fold (observers run under the sink lock and
/// cannot query the sink, so the fold is duplicated here — `apply` is
/// the same single definition either way).
#[derive(Debug)]
struct Recorder {
    bounds: RollingBounds,
    sketches: LatencySketches,
    counters: TraceCounters,
    last_counters: TraceCounters,
    snapshots: Vec<MetricsSnapshot>,
    progress: bool,
    /// Job → tenant, learned from [`exo_trace::JobEvent`]s.
    job_tenant: std::collections::HashMap<u32, u32>,
    /// Start time of in-flight tasks (removed at finish): bounded by
    /// task concurrency, not event count.
    started: std::collections::HashMap<u64, u64>,
    /// Cumulative per-tenant work. Jobs with no job event (pure
    /// single-job runs) bill tenant 0.
    by_tenant: std::collections::BTreeMap<u32, TenantStat>,
}

impl Recorder {
    fn observe(&mut self, ev: &Event) {
        self.counters.apply(&ev.kind);
        self.bounds.on_event(ev);
        self.sketches.on_event(ev);
        match &ev.kind {
            exo_trace::EventKind::Job(j) => {
                self.job_tenant.insert(j.job, j.tenant);
            }
            exo_trace::EventKind::Task(t) => match t.phase {
                exo_trace::TaskPhase::Started => {
                    self.started.insert(t.task, ev.at_us);
                }
                exo_trace::TaskPhase::Finished => {
                    let tenant = self.job_tenant.get(&t.job).copied().unwrap_or(0);
                    let stat = self.by_tenant.entry(tenant).or_insert(TenantStat {
                        tenant,
                        tasks_finished: 0,
                        exec_us: 0,
                    });
                    stat.tasks_finished += 1;
                    if let Some(start) = self.started.remove(&t.task) {
                        stat.exec_us += ev.at_us.saturating_sub(start);
                    }
                }
                _ => {}
            },
            exo_trace::EventKind::Object(_)
            | exo_trace::EventKind::Dep(_)
            | exo_trace::EventKind::FetchWait(_)
            | exo_trace::EventKind::Io(_)
            | exo_trace::EventKind::Resource(_)
            | exo_trace::EventKind::Failure(_)
            | exo_trace::EventKind::Incident(_) => {}
        }
    }

    fn take_snapshot(&mut self, at_us: u64) -> &MetricsSnapshot {
        let delta = self.counters.delta_since(&self.last_counters);
        self.last_counters = self.counters;
        let windows = self.bounds.stage_snapshot(at_us);
        let stages = self
            .sketches
            .stages()
            .into_iter()
            .map(|(label, sketch)| StageStat {
                label,
                finished: sketch.count(),
                window_busy_us: windows
                    .iter()
                    .find(|w| w.label == label)
                    .map(|w| w.busy_us)
                    .unwrap_or(0),
                exec: SketchStat::of(sketch),
            })
            .collect();
        // Emitted only in genuinely multi-tenant runs: single-tenant
        // timeseries stay byte-identical with pre-multi-job output.
        let tenants = if self.by_tenant.len() > 1 {
            self.by_tenant.values().copied().collect()
        } else {
            Vec::new()
        };
        self.snapshots.push(MetricsSnapshot {
            at_us,
            counters: self.counters,
            delta,
            nodes: self.bounds.snapshot(at_us),
            stages,
            tenants,
            task_us: SketchStat::of(&self.sketches.task_us),
            fetch_wait_us: SketchStat::of(&self.sketches.fetch_wait_us),
            queue_us: SketchStat::of(&self.sketches.queue_us),
        });
        self.snapshots.last().expect("just pushed")
    }
}

/// Handle to the live-observability state. One clone is boxed as the
/// sink observer; the runtime keeps another to drive snapshot ticks and
/// answer mid-run queries.
#[derive(Clone, Debug)]
pub struct LiveHandle {
    cfg: LiveConfig,
    inner: Arc<Mutex<Recorder>>,
}

struct LiveObserver(Arc<Mutex<Recorder>>);

impl Observer for LiveObserver {
    fn on_event(&mut self, ev: &Event) {
        self.0.lock().expect("live recorder poisoned").observe(ev);
    }
}

impl LiveHandle {
    pub fn new(cfg: LiveConfig, caps: &DeviceCaps) -> LiveHandle {
        let rec = Recorder {
            bounds: RollingBounds::new(caps, cfg.window_us, cfg.window_buckets),
            sketches: LatencySketches::default(),
            counters: TraceCounters::default(),
            last_counters: TraceCounters::default(),
            snapshots: Vec::new(),
            progress: cfg.progress,
            job_tenant: std::collections::HashMap::new(),
            started: std::collections::HashMap::new(),
            by_tenant: std::collections::BTreeMap::new(),
        };
        LiveHandle {
            cfg,
            inner: Arc::new(Mutex::new(rec)),
        }
    }

    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }

    /// The observer half, for `TraceSink::register_observer`.
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(LiveObserver(self.inner.clone()))
    }

    /// Takes a snapshot at virtual time `at_us` and appends it to the
    /// series. Returns the progress line when configured.
    pub fn tick(&self, at_us: u64) -> Option<String> {
        let mut rec = self.inner.lock().expect("live recorder poisoned");
        let progress = rec.progress;
        let snap = rec.take_snapshot(at_us);
        progress.then(|| snap.progress_line())
    }

    /// Mid-run query: the rolling per-node bound profile at `at_us`,
    /// without emitting a snapshot. This is the surface an adaptive
    /// `PlacementPolicy` consults.
    pub fn bounds_now(&self, at_us: u64) -> Vec<NodeWindow> {
        self.inner
            .lock()
            .expect("live recorder poisoned")
            .bounds
            .snapshot(at_us)
    }

    pub fn snapshot_count(&self) -> usize {
        self.inner
            .lock()
            .expect("live recorder poisoned")
            .snapshots
            .len()
    }

    /// Finalizes the series with one last snapshot at `end_us`. A tick
    /// that already fired at (or after) `end_us` is replaced so the
    /// series stays strictly monotonic with exactly one final line.
    pub fn finish(&self, end_us: u64) -> LiveSeries {
        let mut rec = self.inner.lock().expect("live recorder poisoned");
        while rec.snapshots.last().is_some_and(|s| s.at_us >= end_us) {
            let dropped = rec.snapshots.pop().expect("nonempty");
            // Fold the dropped line's delta back so the final delta
            // still telescopes to the cumulative counters.
            rec.last_counters = rec.last_counters.delta_since(&dropped.delta);
        }
        rec.take_snapshot(end_us);
        LiveSeries {
            interval_us: self.cfg.snapshot_interval_us,
            window_us: self.cfg.window_us,
            snapshots: std::mem::take(&mut rec.snapshots),
        }
    }
}

/// A finished run's snapshot timeseries.
#[derive(Debug, Clone)]
pub struct LiveSeries {
    pub interval_us: u64,
    pub window_us: u64,
    pub snapshots: Vec<MetricsSnapshot>,
}

impl LiveSeries {
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Cumulative counters of the last snapshot — equals the run's
    /// `RtMetrics` counters exactly.
    pub fn final_counters(&self) -> TraceCounters {
        self.snapshots
            .last()
            .map(|s| s.counters)
            .unwrap_or_default()
    }

    /// Sums every snapshot's `delta` — must reproduce
    /// [`LiveSeries::final_counters`] exactly (the telescoping
    /// property the integration tests pin).
    pub fn fold_deltas(&self) -> TraceCounters {
        let mut c = TraceCounters::default();
        for s in &self.snapshots {
            c.add(&s.delta);
        }
        c
    }

    /// One JSON object per line, ready for `--live <path>`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.snapshots {
            out.push_str(&s.to_json().render());
            out.push('\n');
        }
        out
    }

    /// The end-of-run summary block embedded under `"live"` in bench
    /// results files.
    pub fn summary_json(&self) -> Json {
        let last = self.snapshots.last();
        let mut doc = Json::obj()
            .set("snapshots", self.len())
            .set("interval_us", self.interval_us)
            .set("window_us", self.window_us)
            .set("final_counters", counters_to_json(&self.final_counters()));
        if let Some(s) = last {
            doc = doc
                .set("end_us", s.at_us)
                .set("task_p50_us", s.task_us.p50_us)
                .set("task_p99_us", s.task_us.p99_us)
                .set("task_p999_us", s.task_us.p999_us)
                .set("fetch_wait_p99_us", s.fetch_wait_us.p99_us)
                .set("queue_p99_us", s.queue_us.p99_us)
                .set(
                    "dominant_bounds",
                    Json::Arr(
                        s.nodes
                            .iter()
                            .map(|n| Json::Str(n.dominant.name().to_string()))
                            .collect(),
                    ),
                );
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_sim::NodeCaps;
    use exo_trace::{EventKind, IoDir, IoEvent, ObjectEvent, ObjectPhase, TraceSink};

    fn caps() -> DeviceCaps {
        DeviceCaps::uniform(
            NodeCaps {
                cpu_slots: 8,
                disk_seq_bw: 1e9,
                disk_random_iops: 1500.0,
                disk_devices: 6,
                nic_bw: 1e9,
                store_bytes: 1_000_000,
            },
            2,
        )
    }

    #[test]
    fn handle_observes_through_a_retentionless_sink() {
        let handle = LiveHandle::new(LiveConfig::default(), &caps());
        let sink = TraceSink::disabled();
        sink.register_observer(handle.observer());
        sink.set_now(10);
        sink.emit(EventKind::Object(ObjectEvent {
            object: 1,
            phase: ObjectPhase::Transferred,
            node: 1,
            src: Some(0),
            bytes: 128,
        }));
        sink.set_now(20);
        sink.emit(EventKind::Io(IoEvent {
            node: 0,
            dir: IoDir::Write,
            bytes: 64,
        }));
        assert!(sink.is_empty(), "no retention");
        handle.tick(100);
        let series = handle.finish(200);
        assert_eq!(series.len(), 2);
        let fin = series.final_counters();
        assert_eq!(fin.net_bytes, 128);
        assert_eq!(fin.disk_write_bytes, 64);
        assert_eq!(fin, sink.counters(), "observer fold matches sink fold");
        assert_eq!(series.fold_deltas(), fin, "deltas telescope");
    }

    #[test]
    fn finish_replaces_coincident_tick_and_stays_monotonic() {
        let handle = LiveHandle::new(LiveConfig::default(), &caps());
        handle.tick(100);
        handle.tick(200);
        let series = handle.finish(200);
        assert_eq!(series.len(), 2);
        assert!(series.snapshots.windows(2).all(|w| w[0].at_us < w[1].at_us));
        assert_eq!(series.snapshots.last().expect("final").at_us, 200);
        assert_eq!(series.fold_deltas(), series.final_counters());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_counters() {
        let handle = LiveHandle::new(LiveConfig::default(), &caps());
        let sink = TraceSink::disabled();
        sink.register_observer(handle.observer());
        for i in 0..5u64 {
            sink.set_now(i * 100);
            sink.emit(EventKind::Io(IoEvent {
                node: 0,
                dir: IoDir::Read,
                bytes: 10,
            }));
            // Like the runtime's LiveSnapshot arm: settle the sink's
            // pending block before snapshotting observer-fed state.
            sink.flush();
            handle.tick(i * 100 + 50);
        }
        let series = handle.finish(1000);
        let jsonl = series.to_jsonl();
        let mut folded = TraceCounters::default();
        let mut last_at = None;
        for line in jsonl.lines() {
            let j = Json::parse(line).expect("line parses");
            let at = j.get("at_us").and_then(Json::as_f64).expect("at_us") as u64;
            assert!(last_at.is_none_or(|p| at > p), "strictly monotonic");
            last_at = Some(at);
            folded
                .add(&counters_from_json(j.get("delta").expect("delta")).expect("delta counters"));
        }
        assert_eq!(folded, series.final_counters());
        assert_eq!(folded.disk_read_bytes, 50);
        let summary = series.summary_json();
        assert_eq!(
            summary.get("snapshots").and_then(Json::as_f64),
            Some(series.len() as f64)
        );
    }
}
