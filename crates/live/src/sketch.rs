//! Deterministic online quantile sketch: an HDR-style log-bucketed
//! histogram over microsecond durations.
//!
//! No randomness, no retained samples, fixed bucket count. Values below
//! `2^SUB_BITS` get exact unit-width buckets; above that, each octave
//! `[2^k, 2^(k+1))` is split into `2^SUB_BITS` equal sub-buckets, so a
//! bucket's width is at most `1/2^SUB_BITS` of its lower edge. Reported
//! quantiles are the *upper edge* of the bucket holding the rank, which
//! bounds the error one-sidedly:
//!
//! ```text
//! exact ≤ reported ≤ exact × (1 + RELATIVE_ERROR)
//! ```
//!
//! (the proptest in `tests/proptests.rs` checks exactly this bound
//! against sorted exact percentiles).

/// Sub-bucket resolution exponent: `2^SUB_BITS` sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32
/// Values saturate below `2^MAX_OCTAVE` µs (~12.7 virtual days).
const MAX_OCTAVE: u32 = 40;
const BUCKETS: usize = SUB + (MAX_OCTAVE - SUB_BITS) as usize * SUB;

/// One-sided relative error bound of reported quantiles.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// Fixed-memory histogram of `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let v = v.min((1u64 << MAX_OCTAVE) - 1);
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB - 1);
        SUB + (msb - SUB_BITS) as usize * SUB + sub
    }

    /// Upper edge of bucket `idx` — the value reported for ranks that
    /// land in it.
    fn upper(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let oct = (idx - SUB) / SUB;
        let sub = (idx - SUB) % SUB;
        let shift = oct as u32;
        let lo = ((SUB + sub) as u64) << shift;
        lo + (1u64 << shift) - 1
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum of the recorded values (not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum of the recorded values; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Absorbs every sample of `other` into `self`. Buckets are aligned
    /// by construction (same fixed geometry), so merging is an
    /// element-wise sum and the merged sketch is *identical* to one that
    /// recorded both sample sets directly — the ≤[`RELATIVE_ERROR`]
    /// one-sided quantile bound is preserved exactly (property-tested in
    /// `tests/proptests.rs`).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (0..=1): the upper edge of the bucket
    /// containing the rank-`⌈q·n⌉` smallest sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the exact max (the top bucket's
                // upper edge can overshoot it).
                return Self::upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// A run-so-far / recent-window split over one metric: samples land in
/// the `window` sketch; [`BaselineSketch::rotate`] merges the window
/// into the `baseline` and clears it. Drift detectors (exo-watch's
/// queue-delay blowup) compare the current window's quantiles against
/// the baseline of everything that came before it — the "is *now*
/// different from *this run so far*" question a single cumulative
/// sketch cannot answer.
#[derive(Debug, Clone, Default)]
pub struct BaselineSketch {
    baseline: QuantileSketch,
    window: QuantileSketch,
}

impl BaselineSketch {
    pub fn new() -> BaselineSketch {
        BaselineSketch::default()
    }

    /// Records into the current window.
    pub fn record(&mut self, v: u64) {
        self.window.record(v);
    }

    /// Run-so-far sketch, excluding the current window.
    pub fn baseline(&self) -> &QuantileSketch {
        &self.baseline
    }

    /// The current (not yet rotated) window sketch.
    pub fn window(&self) -> &QuantileSketch {
        &self.window
    }

    /// Folds the current window into the baseline and starts a fresh
    /// window. Merging is exact (aligned buckets), so after any sequence
    /// of rotations `baseline` is identical to a sketch that recorded
    /// every pre-window sample directly.
    pub fn rotate(&mut self) {
        let window = std::mem::take(&mut self.window);
        self.baseline.merge(&window);
    }

    /// Total samples recorded (baseline + window).
    pub fn count(&self) -> u64 {
        self.baseline.count() + self.window.count()
    }
}

/// Latency sketches fed by the live event stream: task execution time,
/// fetch-wait time, and queue delay, plus per-stage execution sketches.
/// Memory is O(stages × buckets + in-flight tasks) — in-flight state is
/// bounded by cluster slots, never by run length.
#[derive(Debug, Default)]
pub struct LatencySketches {
    /// Execution time (`Finished − Started`) across all tasks.
    pub task_us: QuantileSketch,
    /// Argument fetch-wait intervals (remote fetch / restore / rebuild).
    pub fetch_wait_us: QuantileSketch,
    /// Queue delay (`Dequeued − Scheduled`).
    pub queue_us: QuantileSketch,
    stages: std::collections::HashMap<&'static str, QuantileSketch>,
    open_sched: std::collections::HashMap<u64, u64>,
    open_start: std::collections::HashMap<u64, (u64, &'static str)>,
    open_fetch: std::collections::HashMap<(u64, u64), u64>,
}

impl LatencySketches {
    pub fn on_event(&mut self, ev: &exo_trace::Event) {
        use exo_trace::{EventKind, TaskPhase};
        match &ev.kind {
            EventKind::Task(t) => match t.phase {
                // A retry re-schedules the same task id; latest wins.
                TaskPhase::Scheduled => {
                    self.open_sched.insert(t.task, ev.at_us);
                }
                TaskPhase::Dequeued => {
                    if let Some(s) = self.open_sched.remove(&t.task) {
                        self.queue_us.record(ev.at_us.saturating_sub(s));
                    }
                }
                TaskPhase::Started => {
                    self.open_start.insert(t.task, (ev.at_us, t.label));
                }
                TaskPhase::Finished => {
                    if let Some((s, label)) = self.open_start.remove(&t.task) {
                        let d = ev.at_us.saturating_sub(s);
                        self.task_us.record(d);
                        self.stages.entry(label).or_default().record(d);
                    }
                }
            },
            EventKind::FetchWait(f) => {
                if f.begin {
                    self.open_fetch.insert((f.task, f.object), ev.at_us);
                } else if let Some(b) = self.open_fetch.remove(&(f.task, f.object)) {
                    self.fetch_wait_us.record(ev.at_us.saturating_sub(b));
                }
            }
            // No latency intervals live in these; enumerated so a new
            // variant is a compile error, not a silently unmeasured one.
            EventKind::Object(_)
            | EventKind::Dep(_)
            | EventKind::Io(_)
            | EventKind::Resource(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_)
            | EventKind::Job(_) => {}
        }
    }

    /// Per-stage execution sketches, label-sorted for deterministic
    /// output.
    pub fn stages(&self) -> Vec<(&'static str, &QuantileSketch)> {
        let mut v: Vec<_> = self.stages.iter().map(|(l, s)| (*l, s)).collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 5, 17, 31] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 5);
        assert_eq!(s.quantile(1.0), 31);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 31);
    }

    #[test]
    fn quantiles_bound_exact_values() {
        let mut s = QuantileSketch::new();
        let vals: Vec<u64> = (0..10_000u64).map(|i| i * 37 + 13).collect();
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            assert!(est >= exact, "q={q}: {est} < {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                "q={q}: {est} vs {exact}"
            );
        }
    }

    #[test]
    fn saturates_at_cap_without_panicking() {
        let mut s = QuantileSketch::new();
        s.record(u64::MAX);
        s.record(1 << 50);
        assert_eq!(s.count(), 2);
        assert!(s.quantile(1.0) >= (1u64 << MAX_OCTAVE) - (1 << (MAX_OCTAVE - SUB_BITS)));
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0usize;
        for v in (0..1_000_000u64).step_by(997) {
            let i = QuantileSketch::index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < BUCKETS);
            last = i;
        }
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_is_identical_to_direct_recording() {
        let (mut a, mut b, mut direct) = (
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        );
        for v in (0..500u64).map(|i| i * 101 + 7) {
            a.record(v);
            direct.record(v);
        }
        for v in (0..300u64).map(|i| i * 977 + 3) {
            b.record(v);
            direct.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), direct.count());
        assert_eq!(a.min(), direct.min());
        assert_eq!(a.max(), direct.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merging_an_empty_sketch_is_a_noop() {
        let mut a = QuantileSketch::new();
        a.record(42);
        a.merge(&QuantileSketch::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 42);
        assert_eq!(a.max(), 42);
        let mut empty = QuantileSketch::new();
        empty.merge(&a);
        assert_eq!(empty.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn baseline_split_rotates_window_into_baseline() {
        let mut s = BaselineSketch::new();
        for v in [10u64, 12, 11, 13] {
            s.record(v);
        }
        assert_eq!(s.baseline().count(), 0);
        assert_eq!(s.window().count(), 4);
        s.rotate();
        assert_eq!(s.baseline().count(), 4);
        assert_eq!(s.window().count(), 0);
        // A drifted second window never contaminates the baseline until
        // rotated.
        for v in [500u64, 510] {
            s.record(v);
        }
        assert_eq!(s.baseline().quantile(0.99), 13);
        let p50 = s.window().quantile(0.5);
        assert!((500..=500 + (500.0 * RELATIVE_ERROR) as u64).contains(&p50));
        assert_eq!(s.count(), 6);
        s.rotate();
        assert_eq!(s.baseline().max(), 510);
    }

    #[test]
    fn latency_sketches_track_task_lifecycle() {
        use exo_trace::{Event, EventKind, FetchWaitEvent, TaskPhase, TaskSpan};
        let span = |task, phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase,
                node: 0,
                label: "map",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        };
        let mut ls = LatencySketches::default();
        ls.on_event(&span(1, TaskPhase::Scheduled, 0));
        ls.on_event(&span(1, TaskPhase::Dequeued, 10)); // queue 10
        ls.on_event(&span(1, TaskPhase::Started, 15));
        ls.on_event(&Event {
            at_us: 15,
            kind: EventKind::FetchWait(FetchWaitEvent {
                task: 1,
                object: 9,
                node: 0,
                begin: true,
            }),
        });
        ls.on_event(&Event {
            at_us: 22,
            kind: EventKind::FetchWait(FetchWaitEvent {
                task: 1,
                object: 9,
                node: 0,
                begin: false,
            }),
        });
        ls.on_event(&span(1, TaskPhase::Finished, 40)); // exec 25
        assert_eq!(ls.queue_us.quantile(0.5), 10);
        assert_eq!(ls.fetch_wait_us.quantile(0.5), 7);
        assert_eq!(ls.task_us.quantile(0.5), 25);
        let stages = ls.stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].0, "map");
        assert_eq!(stages[0].1.count(), 1);
        // Open-state maps drained: fixed memory across a long run.
        assert!(ls.open_sched.is_empty() || !ls.open_sched.contains_key(&1));
        assert!(ls.open_start.is_empty());
        assert!(ls.open_fetch.is_empty());
    }
}
