//! Deterministic online quantile sketch: an HDR-style log-bucketed
//! histogram over microsecond durations.
//!
//! No randomness, no retained samples, fixed bucket count. Values below
//! `2^SUB_BITS` get exact unit-width buckets; above that, each octave
//! `[2^k, 2^(k+1))` is split into `2^SUB_BITS` equal sub-buckets, so a
//! bucket's width is at most `1/2^SUB_BITS` of its lower edge. Reported
//! quantiles are the *upper edge* of the bucket holding the rank, which
//! bounds the error one-sidedly:
//!
//! ```text
//! exact ≤ reported ≤ exact × (1 + RELATIVE_ERROR)
//! ```
//!
//! (the proptest in `tests/proptests.rs` checks exactly this bound
//! against sorted exact percentiles).

/// Sub-bucket resolution exponent: `2^SUB_BITS` sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32
/// Values saturate below `2^MAX_OCTAVE` µs (~12.7 virtual days).
const MAX_OCTAVE: u32 = 40;
const BUCKETS: usize = SUB + (MAX_OCTAVE - SUB_BITS) as usize * SUB;

/// One-sided relative error bound of reported quantiles.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// Fixed-memory histogram of `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let v = v.min((1u64 << MAX_OCTAVE) - 1);
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB - 1);
        SUB + (msb - SUB_BITS) as usize * SUB + sub
    }

    /// Upper edge of bucket `idx` — the value reported for ranks that
    /// land in it.
    fn upper(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let oct = (idx - SUB) / SUB;
        let sub = (idx - SUB) % SUB;
        let shift = oct as u32;
        let lo = ((SUB + sub) as u64) << shift;
        lo + (1u64 << shift) - 1
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum of the recorded values (not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum of the recorded values; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0..=1): the upper edge of the bucket
    /// containing the rank-`⌈q·n⌉` smallest sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the exact max (the top bucket's
                // upper edge can overshoot it).
                return Self::upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// Latency sketches fed by the live event stream: task execution time,
/// fetch-wait time, and queue delay, plus per-stage execution sketches.
/// Memory is O(stages × buckets + in-flight tasks) — in-flight state is
/// bounded by cluster slots, never by run length.
#[derive(Debug, Default)]
pub struct LatencySketches {
    /// Execution time (`Finished − Started`) across all tasks.
    pub task_us: QuantileSketch,
    /// Argument fetch-wait intervals (remote fetch / restore / rebuild).
    pub fetch_wait_us: QuantileSketch,
    /// Queue delay (`Dequeued − Scheduled`).
    pub queue_us: QuantileSketch,
    stages: std::collections::HashMap<&'static str, QuantileSketch>,
    open_sched: std::collections::HashMap<u64, u64>,
    open_start: std::collections::HashMap<u64, (u64, &'static str)>,
    open_fetch: std::collections::HashMap<(u64, u64), u64>,
}

impl LatencySketches {
    pub fn on_event(&mut self, ev: &exo_trace::Event) {
        use exo_trace::{EventKind, TaskPhase};
        match &ev.kind {
            EventKind::Task(t) => match t.phase {
                // A retry re-schedules the same task id; latest wins.
                TaskPhase::Scheduled => {
                    self.open_sched.insert(t.task, ev.at_us);
                }
                TaskPhase::Dequeued => {
                    if let Some(s) = self.open_sched.remove(&t.task) {
                        self.queue_us.record(ev.at_us.saturating_sub(s));
                    }
                }
                TaskPhase::Started => {
                    self.open_start.insert(t.task, (ev.at_us, t.label));
                }
                TaskPhase::Finished => {
                    if let Some((s, label)) = self.open_start.remove(&t.task) {
                        let d = ev.at_us.saturating_sub(s);
                        self.task_us.record(d);
                        self.stages.entry(label).or_default().record(d);
                    }
                }
            },
            EventKind::FetchWait(f) => {
                if f.begin {
                    self.open_fetch.insert((f.task, f.object), ev.at_us);
                } else if let Some(b) = self.open_fetch.remove(&(f.task, f.object)) {
                    self.fetch_wait_us.record(ev.at_us.saturating_sub(b));
                }
            }
            _ => {}
        }
    }

    /// Per-stage execution sketches, label-sorted for deterministic
    /// output.
    pub fn stages(&self) -> Vec<(&'static str, &QuantileSketch)> {
        let mut v: Vec<_> = self.stages.iter().map(|(l, s)| (*l, s)).collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 5, 17, 31] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 5);
        assert_eq!(s.quantile(1.0), 31);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 31);
    }

    #[test]
    fn quantiles_bound_exact_values() {
        let mut s = QuantileSketch::new();
        let vals: Vec<u64> = (0..10_000u64).map(|i| i * 37 + 13).collect();
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            assert!(est >= exact, "q={q}: {est} < {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                "q={q}: {est} vs {exact}"
            );
        }
    }

    #[test]
    fn saturates_at_cap_without_panicking() {
        let mut s = QuantileSketch::new();
        s.record(u64::MAX);
        s.record(1 << 50);
        assert_eq!(s.count(), 2);
        assert!(s.quantile(1.0) >= (1u64 << MAX_OCTAVE) - (1 << (MAX_OCTAVE - SUB_BITS)));
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0usize;
        for v in (0..1_000_000u64).step_by(997) {
            let i = QuantileSketch::index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < BUCKETS);
            last = i;
        }
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn latency_sketches_track_task_lifecycle() {
        use exo_trace::{Event, EventKind, FetchWaitEvent, TaskPhase, TaskSpan};
        let span = |task, phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                task,
                phase,
                node: 0,
                label: "map",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        };
        let mut ls = LatencySketches::default();
        ls.on_event(&span(1, TaskPhase::Scheduled, 0));
        ls.on_event(&span(1, TaskPhase::Dequeued, 10)); // queue 10
        ls.on_event(&span(1, TaskPhase::Started, 15));
        ls.on_event(&Event {
            at_us: 15,
            kind: EventKind::FetchWait(FetchWaitEvent {
                task: 1,
                object: 9,
                node: 0,
                begin: true,
            }),
        });
        ls.on_event(&Event {
            at_us: 22,
            kind: EventKind::FetchWait(FetchWaitEvent {
                task: 1,
                object: 9,
                node: 0,
                begin: false,
            }),
        });
        ls.on_event(&span(1, TaskPhase::Finished, 40)); // exec 25
        assert_eq!(ls.queue_us.quantile(0.5), 10);
        assert_eq!(ls.fetch_wait_us.quantile(0.5), 7);
        assert_eq!(ls.task_us.quantile(0.5), 25);
        let stages = ls.stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].0, "map");
        assert_eq!(stages[0].1.count(), 1);
        // Open-state maps drained: fixed memory across a long run.
        assert!(ls.open_sched.is_empty() || !ls.open_sched.contains_key(&1));
        assert!(ls.open_start.is_empty());
        assert!(ls.open_fetch.is_empty());
    }
}
