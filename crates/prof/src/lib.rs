//! # exo-prof — offline profiler for exo-trace streams
//!
//! Answers the three questions an Exoshuffle run report should open
//! with, all derived from the retained [`exo_trace::Event`] stream:
//!
//! 1. **What gated completion?** [`critical_path`] reconstructs the
//!    task/object dependency DAG from `Dep` edges and walks the
//!    longest-weighted chain backwards from the last task to finish,
//!    breaking each critical task into queue / staging / exec /
//!    fetch-wait time. [`longest_paths`] sharpens this with a DP-exact
//!    longest chain over all finished attempts plus slack-ranked
//!    near-critical chains for what-if analysis.
//! 2. **What was the run bound by?** [`attribute`] slices the run into
//!    intervals and classifies each as cpu / disk / net / alloc-stall /
//!    idle against the hardware capacities in [`exo_sim::DeviceCaps`],
//!    yielding a bound profile like `disk 61% / net 22% / cpu 9%`.
//! 3. **Were there stragglers or skew?** [`stage_stats`] reports
//!    p50/p99/max execution time and output-bytes skew per stage label.
//! 4. **Did the scheduler place tasks well?** [`placement_quality`]
//!    replays object locations and charges each placement decision with
//!    the argument bytes it moved and the share a better-placed node
//!    would have kept local.
//!
//! [`profile`] bundles all three into a [`ProfileReport`] with a text
//! rendering and a JSON embedding; the bench bins expose it behind
//! `--profile`, and `bench_gate` regresses its headline metrics.

pub mod attribution;
pub mod critpath;
pub mod jobs;
pub mod placement;
pub mod report;
pub mod stages;

pub use attribution::{
    attribute, attribute_all, attribute_per_node, Bound, BoundProfile, Interval,
};
pub use critpath::{critical_path, longest_paths, CritPath, CritTask, NearPath, PathAnalysis};
pub use jobs::{job_stats, JobStat};
pub use placement::{placement_quality, PlacementQuality};
pub use report::{profile, ProfileReport};
pub use stages::{stage_stats, StageStats};
