//! The combined profile report: critical path + bound profile + stage
//! stats, with a human rendering (`Display`) and a JSON embedding for
//! bench result files.

use std::fmt;

use exo_sim::DeviceCaps;
use exo_trace::{Event, Json};

use crate::attribution::{attribute_all, Bound, BoundProfile};
use crate::critpath::{critical_path, longest_paths, CritPath, PathAnalysis};
use crate::jobs::{job_stats, JobStat};
use crate::placement::{placement_quality, PlacementQuality};
use crate::stages::{stage_stats, StageStats};

/// Everything exo-prof derives from one run's event stream.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub critpath: CritPath,
    /// DP-exact longest chain plus slack-ranked near-critical chains,
    /// alongside the greedy `critpath` walk (see [`longest_paths`]).
    pub paths: PathAnalysis,
    pub bounds: BoundProfile,
    /// One bound profile per node, classified against that node's own
    /// capacities. On homogeneous clusters these mostly echo `bounds`;
    /// on mixed clusters they are where the HDD/SSD asymmetry shows up.
    pub per_node_bounds: Vec<BoundProfile>,
    pub stages: Vec<StageStats>,
    /// How well the placement policy kept argument bytes local.
    pub placement: PlacementQuality,
    /// Per-job timing and critical paths. Rendered/serialised only
    /// when the trace carries more than one job, so single-job report
    /// output stays byte-identical.
    pub jobs: Vec<JobStat>,
}

/// Runs the full analysis over a retained trace stream.
pub fn profile(events: &[Event], caps: &DeviceCaps) -> ProfileReport {
    // One memoized scan yields both the cluster and the per-node bound
    // profiles; re-deriving them separately costs 1 + N stream passes.
    let (bounds, per_node_bounds) = attribute_all(events, caps);
    ProfileReport {
        critpath: critical_path(events),
        paths: longest_paths(events, 3),
        bounds,
        per_node_bounds,
        stages: stage_stats(events),
        placement: placement_quality(events),
        jobs: job_stats(events),
    }
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

impl ProfileReport {
    /// JSON document embedded under `"profile"` in bench result files.
    pub fn to_json(&self) -> Json {
        let (queue, stage, exec, fetch) = self.critpath.totals();
        let mut bounds = Json::obj();
        for b in Bound::ALL {
            bounds = bounds.set(b.name(), self.bounds.fraction(b));
        }
        let crit_tasks: Vec<Json> = self
            .critpath
            .tasks
            .iter()
            .map(|t| {
                Json::obj()
                    .set("task", t.task)
                    .set("label", t.label)
                    .set("node", t.node)
                    .set("attempt", t.attempt)
                    .set("queue_us", t.queue_us)
                    .set("stage_us", t.stage_us)
                    .set("exec_us", t.exec_us)
                    .set("fetch_wait_us", t.fetch_wait_us)
                    .set("contribution_us", t.contribution_us)
            })
            .collect();
        let stages: Vec<Json> = self
            .stages
            .iter()
            .map(|s| {
                Json::obj()
                    .set("label", s.label)
                    .set("tasks", s.tasks)
                    .set("p50_us", s.p50_us)
                    .set("p99_us", s.p99_us)
                    .set("max_us", s.max_us)
                    .set("straggler_ratio", s.straggler_ratio())
                    .set("mean_bytes", s.mean_bytes)
                    .set("max_bytes", s.max_bytes)
                    .set("bytes_skew", s.bytes_skew())
            })
            .collect();
        let per_node: Vec<Json> = self
            .per_node_bounds
            .iter()
            .enumerate()
            .map(|(node, p)| {
                let mut fractions = Json::obj();
                for b in Bound::ALL {
                    fractions = fractions.set(b.name(), p.fraction(b));
                }
                Json::obj()
                    .set("node", node as u64)
                    .set("dominant_bound", p.dominant().name())
                    .set("bound_profile", fractions)
            })
            .collect();
        let mut doc = Json::obj()
            .set("dominant_bound", self.bounds.dominant().name())
            .set("bound_profile", bounds)
            .set("per_node_bounds", per_node)
            .set("placement", self.placement.to_json());
        if self.jobs.len() > 1 {
            let jobs: Vec<Json> = self
                .jobs
                .iter()
                .map(|j| {
                    Json::obj()
                        .set("job", j.job)
                        .set("tenant", j.tenant)
                        .set("label", j.label)
                        .set("admitted_us", j.admitted_us)
                        .set("finished_us", j.finished_us)
                        .set("jct_us", j.jct_us())
                        .set("tasks_finished", j.tasks_finished)
                        .set(
                            "critical_path",
                            Json::obj()
                                .set("end_us", j.critpath.end_us)
                                .set("covered_us", j.critpath.covered_us)
                                .set("tasks_on_path", j.critpath.tasks.len()),
                        )
                })
                .collect();
            doc = doc.set("jobs", jobs);
        }
        doc.set(
            "critical_path",
            Json::obj()
                .set("end_us", self.critpath.end_us)
                .set("covered_us", self.critpath.covered_us)
                .set("coverage", self.critpath.coverage())
                .set("tasks_on_path", self.critpath.tasks.len())
                .set("queue_us", queue)
                .set("stage_us", stage)
                .set("exec_us", exec)
                .set("fetch_wait_us", fetch)
                .set("tasks", crit_tasks),
        )
        .set(
            "paths",
            Json::obj()
                .set(
                    "longest",
                    Json::obj()
                        .set("end_us", self.paths.longest.end_us)
                        .set("covered_us", self.paths.longest.covered_us)
                        .set("coverage", self.paths.longest.coverage())
                        .set("tasks_on_path", self.paths.longest.tasks.len()),
                )
                .set(
                    "near",
                    self.paths
                        .near
                        .iter()
                        .map(|n| {
                            Json::obj()
                                .set("end_task", n.end_task)
                                .set("end_label", n.end_label)
                                .set("end_us", n.end_us)
                                .set("covered_us", n.covered_us)
                                .set("slack_us", n.slack_us)
                                .set(
                                    "tasks",
                                    n.tasks.iter().map(|&t| Json::from(t)).collect::<Vec<_>>(),
                                )
                        })
                        .collect::<Vec<_>>(),
                ),
        )
        .set("stages", stages)
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile: bound by {}", self.bounds.one_line())?;
        // Per-node lines only earn their space when they disagree with
        // each other — i.e. the cluster is effectively heterogeneous.
        let divergent = self
            .per_node_bounds
            .windows(2)
            .any(|w| w[0].dominant() != w[1].dominant());
        if divergent {
            for (node, p) in self.per_node_bounds.iter().enumerate() {
                writeln!(f, "    node{:<3} bound by {}", node, p.one_line())?;
            }
        }
        if self.placement.decisions > 0 {
            writeln!(
                f,
                "  placement ({}): {} decisions moved {:.1} MB of argument bytes, {:.1} MB avoidable ({:.0}%)",
                self.placement.policy.unwrap_or("none"),
                self.placement.decisions,
                self.placement.transfer_bytes as f64 / 1e6,
                self.placement.avoidable_bytes as f64 / 1e6,
                100.0 * self.placement.avoidable_fraction()
            )?;
        }
        let cp = &self.critpath;
        writeln!(
            f,
            "  critical path: {} tasks cover {:.2} s of {:.2} s makespan ({:.0}%)",
            cp.tasks.len(),
            secs(cp.covered_us),
            secs(cp.end_us),
            100.0 * cp.coverage()
        )?;
        // The DP path only earns a line when it disagrees with the
        // greedy walk, or when a near-critical chain is close enough
        // (< 20% slack) to matter for what-if analysis.
        let lp = &self.paths.longest;
        if lp.covered_us > cp.covered_us {
            writeln!(
                f,
                "    longest chain (DP): {} tasks cover {:.2} s ({:.0}%)",
                lp.tasks.len(),
                secs(lp.covered_us),
                100.0 * lp.coverage()
            )?;
        }
        for n in &self.paths.near {
            if lp.covered_us > 0 && (n.slack_us as f64) < 0.2 * lp.covered_us as f64 {
                writeln!(
                    f,
                    "    near-critical: {} tasks ending at {} task {} cover {:.2} s (slack {:.2} s)",
                    n.tasks.len(),
                    n.end_label,
                    n.end_task,
                    secs(n.covered_us),
                    secs(n.slack_us)
                )?;
            }
        }
        let (queue, stage, exec, fetch) = cp.totals();
        if !cp.tasks.is_empty() {
            writeln!(
                f,
                "    on-path time: exec {:.2} s, staging {:.2} s, queued {:.2} s, fetch-wait {:.2} s",
                secs(exec),
                secs(stage),
                secs(queue),
                secs(fetch)
            )?;
            // The head of the walk is job completion; show the top
            // contributors rather than the whole (possibly long) chain.
            let mut top: Vec<&crate::critpath::CritTask> = cp.tasks.iter().collect();
            top.sort_by_key(|t| std::cmp::Reverse(t.contribution_us));
            writeln!(f, "    top critical tasks:")?;
            for t in top.iter().take(5) {
                writeln!(
                    f,
                    "      {:<20} node{:<3} task {:<8} owns {:>8.3} s (exec {:.3} s, fetch-wait {:.3} s)",
                    t.label,
                    t.node,
                    t.task,
                    secs(t.contribution_us),
                    secs(t.exec_us),
                    secs(t.fetch_wait_us)
                )?;
            }
        }
        if self.jobs.len() > 1 {
            writeln!(f, "  jobs:")?;
            for j in &self.jobs {
                writeln!(
                    f,
                    "    job{:<3} tenant{:<3} {:<16} jct {:>8.3} s  {:>5} tasks  critpath {:.3} s",
                    j.job,
                    j.tenant,
                    j.label,
                    secs(j.jct_us()),
                    j.tasks_finished,
                    secs(j.critpath.covered_us)
                )?;
            }
        }
        if !self.stages.is_empty() {
            writeln!(f, "  stages:")?;
            for s in &self.stages {
                write!(
                    f,
                    "    {:<20} {:>5} tasks  p50 {:>8.3} s  p99 {:>8.3} s  max {:>8.3} s  straggler x{:.2}",
                    s.label,
                    s.tasks,
                    secs(s.p50_us),
                    secs(s.p99_us),
                    secs(s.max_us),
                    s.straggler_ratio()
                )?;
                if s.mean_bytes > 0 {
                    write!(f, "  bytes-skew x{:.2}", s.bytes_skew())?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{DepEvent, DepKind, EventKind, TaskPhase, TaskSpan};

    fn caps() -> DeviceCaps {
        DeviceCaps::uniform(
            exo_sim::NodeCaps {
                cpu_slots: 8,
                disk_seq_bw: 1e9,
                disk_random_iops: 1500.0,
                disk_devices: 1,
                nic_bw: 1e9,
                store_bytes: 1 << 30,
            },
            1,
        )
    }

    fn chain() -> Vec<Event> {
        let mut events = Vec::new();
        for (task, (s, e)) in [(0u64, (0u64, 40u64)), (1, (40, 100))].into_iter() {
            events.push(Event {
                at_us: 0,
                kind: EventKind::Dep(DepEvent {
                    task,
                    object: task + 1,
                    kind: DepKind::Output,
                }),
            });
            if task > 0 {
                events.push(Event {
                    at_us: 0,
                    kind: EventKind::Dep(DepEvent {
                        task,
                        object: task,
                        kind: DepKind::Arg,
                    }),
                });
            }
            for (phase, at) in [
                (TaskPhase::Scheduled, s),
                (TaskPhase::Started, s),
                (TaskPhase::Finished, e),
            ] {
                events.push(Event {
                    at_us: at,
                    kind: EventKind::Task(TaskSpan {
                        job: 0,
                        task,
                        phase,
                        node: 0,
                        label: if task == 0 { "map" } else { "reduce" },
                        attempt: 0,
                        retry: false,
                        reason: None,
                    }),
                });
            }
        }
        events
    }

    #[test]
    fn report_renders_and_serialises_consistently() {
        let events = chain();
        let r = profile(&events, &caps());
        assert_eq!(r.critpath.tasks.len(), 2);
        assert_eq!(r.stages.len(), 2);
        let text = r.to_string();
        assert!(text.contains("critical path: 2 tasks"), "{text}");
        assert!(text.contains("profile: bound by"), "{text}");
        let json = r.to_json().render();
        assert!(json.contains(r#""dominant_bound""#));
        assert!(json.contains(r#""coverage":1"#), "{json}");
        // The JSON round-trips through the parser.
        let parsed = Json::parse(&json).expect("parse");
        assert_eq!(
            parsed
                .get("critical_path")
                .and_then(|c| c.get("tasks_on_path"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }
}
