//! Critical-path analysis over the task/object dependency DAG.
//!
//! The trace stream carries two kinds of facts we join here: task
//! lifecycle spans ([`TaskPhase`] scheduled → dequeued → started →
//! finished) and dependency edges ([`DepKind::Arg`] task-consumes-object,
//! [`DepKind::Output`] task-produces-object). From these we reconstruct
//! the task-level DAG and walk backwards from the last task to finish,
//! at each step following the *latest-finishing* producer of any
//! argument — the classic longest-weighted-path heuristic for "what
//! actually gated job completion". Each critical task's contribution is
//! the wall-clock interval it exclusively owned on that path.

use std::collections::{BTreeMap, HashMap};

use exo_trace::{DepKind, Event, EventKind, TaskPhase};

/// One task on the critical path, with its lifecycle breakdown.
#[derive(Debug, Clone)]
pub struct CritTask {
    pub task: u64,
    pub label: &'static str,
    pub node: u32,
    pub attempt: u32,
    /// Scheduled → dequeued: time spent queued behind other tasks.
    pub queue_us: u64,
    /// Dequeued → started: argument staging (restore/fetch/pin).
    pub stage_us: u64,
    /// Started → finished: execution (CPU + output write).
    pub exec_us: u64,
    /// Wall-clock this task spent blocked on non-resident arguments:
    /// the union of matched fetch-wait begin/end intervals, so waits on
    /// many objects at once count the elapsed time only once.
    pub fetch_wait_us: u64,
    /// Wall-clock this task exclusively owns on the critical path:
    /// `finished − max(predecessor finish, scheduled)`.
    pub contribution_us: u64,
}

/// The reconstructed critical path, last task first.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    /// Tasks on the path, ordered from job completion backwards.
    pub tasks: Vec<CritTask>,
    /// Finish time of the last task (path end), microseconds.
    pub end_us: u64,
    /// Sum of per-task contributions.
    pub covered_us: u64,
}

impl CritPath {
    /// Fraction of the run's makespan explained by the path (0..=1).
    /// Below ~0.8 usually means the run was gated by resource queueing
    /// between tasks rather than by the dependency chain itself.
    pub fn coverage(&self) -> f64 {
        if self.end_us == 0 {
            return 0.0;
        }
        self.covered_us as f64 / self.end_us as f64
    }

    /// Summed breakdown across the path: (queue, stage, exec, fetch).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for c in &self.tasks {
            t.0 += c.queue_us;
            t.1 += c.stage_us;
            t.2 += c.exec_us;
            t.3 += c.fetch_wait_us;
        }
        t
    }
}

/// Total length covered by a set of possibly-overlapping intervals.
fn interval_union_us(mut ivals: Vec<(u64, u64)>) -> u64 {
    ivals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in ivals {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

#[derive(Debug, Clone, Copy, Default)]
struct TaskTimes {
    scheduled: Option<u64>,
    dequeued: Option<u64>,
    started: Option<u64>,
    finished: Option<u64>,
    node: u32,
    label: &'static str,
    attempt: u32,
}

/// The per-task facts both path analyses start from, folded from the
/// raw stream in one pass.
struct Folded {
    /// Lifecycle keyed by (task, attempt). Ordered: both path analyses
    /// iterate it, and tie-breaks (equal finish times) must not depend
    /// on hash order.
    times: BTreeMap<(u64, u32), TaskTimes>,
    /// task -> argument objects.
    args: HashMap<u64, Vec<u64>>,
    /// object -> producing task.
    producer: HashMap<u64, u64>,
    /// task -> unioned fetch-wait wall-clock.
    fetch_wait: HashMap<u64, u64>,
}

fn fold_events(events: &[Event]) -> Folded {
    let mut times: BTreeMap<(u64, u32), TaskTimes> = BTreeMap::new();
    let mut args: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut producer: HashMap<u64, u64> = HashMap::new();
    // (task, object) -> open fetch-wait begin; task -> closed intervals
    // (ordered — unioned below by iterating).
    let mut open_wait: HashMap<(u64, u64), u64> = HashMap::new();
    let mut wait_ivals: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();

    for ev in events {
        match &ev.kind {
            EventKind::Task(t) => {
                let e = times.entry((t.task, t.attempt)).or_default();
                e.node = t.node;
                e.attempt = t.attempt;
                if !t.label.is_empty() {
                    e.label = t.label;
                }
                match t.phase {
                    TaskPhase::Scheduled => e.scheduled = Some(ev.at_us),
                    TaskPhase::Dequeued => e.dequeued = Some(ev.at_us),
                    TaskPhase::Started => e.started = Some(ev.at_us),
                    TaskPhase::Finished => e.finished = Some(ev.at_us),
                }
            }
            EventKind::Dep(d) => match d.kind {
                DepKind::Arg => args.entry(d.task).or_default().push(d.object),
                DepKind::Output => {
                    producer.insert(d.object, d.task);
                }
            },
            EventKind::FetchWait(w) => {
                let key = (w.task, w.object);
                if w.begin {
                    // Keep the earliest begin if the runtime re-registers.
                    open_wait.entry(key).or_insert(ev.at_us);
                } else if let Some(b) = open_wait.remove(&key) {
                    if ev.at_us > b {
                        wait_ivals.entry(w.task).or_default().push((b, ev.at_us));
                    }
                }
            }
            // Object/store, I/O, resource, failure, and incident events
            // carry no lifecycle or dependency facts; enumerated so a
            // new variant is a compile error, not a silent drop.
            EventKind::Object(_)
            | EventKind::Io(_)
            | EventKind::Resource(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_)
            | EventKind::Job(_) => {}
        }
    }

    // A task staging many arguments waits on them concurrently; its
    // blocked wall-clock is the union of the intervals, not their sum.
    let fetch_wait: HashMap<u64, u64> = wait_ivals
        .into_iter()
        .map(|(task, ivals)| (task, interval_union_us(ivals)))
        .collect();

    Folded {
        times,
        args,
        producer,
        fetch_wait,
    }
}

/// Computes the critical path of `events`. Tolerates partial streams:
/// unmatched fetch-wait begins are dropped, unfinished tasks are never
/// on the path, and unknown producers terminate the walk.
///
/// This is the fast greedy walk (always follow the *latest-finishing*
/// producer); [`longest_paths`] computes the DP-exact longest chain and
/// the near-critical runners-up.
pub fn critical_path(events: &[Event]) -> CritPath {
    let Folded {
        times,
        args,
        producer,
        fetch_wait,
    } = fold_events(events);

    // Best (latest-finishing) finished attempt per task. Ordered, and
    // fed from the ordered fold, so equal finish times resolve to the
    // lowest attempt on every run rather than whichever hashed first.
    let mut best: BTreeMap<u64, TaskTimes> = BTreeMap::new();
    for (&(task, _), &tt) in &times {
        if tt.finished.is_none() {
            continue;
        }
        match best.get(&task) {
            Some(prev) if prev.finished >= tt.finished => {}
            _ => {
                best.insert(task, tt);
            }
        }
    }

    // --- Pass 2: backward walk from the last finisher. -------------
    let Some((&sink, _)) = best.iter().max_by_key(|(&task, tt)| (tt.finished, task)) else {
        return CritPath::default();
    };

    let mut path = CritPath {
        end_us: best[&sink].finished.unwrap_or(0),
        ..CritPath::default()
    };
    let mut cur = sink;
    let mut guard = 0usize;
    loop {
        let tt = best[&cur];
        // Latest-finishing finished producer among this task's args.
        let pred = args
            .get(&cur)
            .into_iter()
            .flatten()
            .filter_map(|obj| producer.get(obj))
            .filter_map(|p| best.get(p).map(|ptt| (*p, ptt.finished)))
            .max_by_key(|&(p, fin)| (fin, p))
            .map(|(p, _)| p);

        let finished = tt.finished.unwrap_or(0);
        let own_start = match pred.and_then(|p| best[&p].finished) {
            Some(pf) => pf.max(tt.scheduled.unwrap_or(pf)),
            None => tt.scheduled.unwrap_or(0),
        };
        let contribution = finished.saturating_sub(own_start);
        path.covered_us += contribution;
        path.tasks.push(CritTask {
            task: cur,
            label: tt.label,
            node: tt.node,
            attempt: tt.attempt,
            queue_us: tt
                .dequeued
                .zip(tt.scheduled)
                .map(|(d, s)| d.saturating_sub(s))
                .unwrap_or(0),
            stage_us: tt
                .started
                .zip(tt.dequeued)
                .map(|(st, d)| st.saturating_sub(d))
                .unwrap_or(0),
            exec_us: tt
                .started
                .map(|st| finished.saturating_sub(st))
                .unwrap_or(0),
            fetch_wait_us: fetch_wait.get(&cur).copied().unwrap_or(0),
            contribution_us: contribution,
        });

        guard += 1;
        match pred {
            // A retry loop in a corrupt stream could cycle; the task
            // count bounds any legitimate path.
            Some(p) if guard <= best.len() => cur = p,
            _ => break,
        }
    }
    path
}

/// Summary of one near-critical chain: a dependency chain that almost
/// gated the run. Feeds what-if analysis — e.g. "if the critical chain
/// is sped up by more than `slack_us`, this chain gates instead".
#[derive(Debug, Clone)]
pub struct NearPath {
    /// Task the chain ends at.
    pub end_task: u64,
    pub end_label: &'static str,
    /// Finish time of the chain's last task, microseconds.
    pub end_us: u64,
    /// Total covered (exclusively-owned) time along the chain.
    pub covered_us: u64,
    /// Covered-time deficit vs the longest chain: how much faster the
    /// critical chain would have to get before this one gates the run.
    pub slack_us: u64,
    /// Task ids along the chain, end first.
    pub tasks: Vec<u64>,
}

/// DP-exact path analysis: the true longest chain plus slack-ranked
/// near-critical runners-up.
#[derive(Debug, Clone, Default)]
pub struct PathAnalysis {
    /// Longest-covered dependency chain ending at the run's last
    /// finisher. `covered_us` here is >= the greedy [`critical_path`]
    /// cover (the greedy walk follows latest-finishing producers, which
    /// is not always the longest chain).
    pub longest: CritPath,
    /// Top near-critical chains, ranked by ascending slack. Chains may
    /// share ancestry with the critical chain (most real chains share
    /// sources), but every entry ends at a distinct attempt and strict
    /// sub-chains of already-reported chains are suppressed.
    pub near: Vec<NearPath>,
}

/// True longest-path DP over *all finished attempts* in `events`.
///
/// Unlike [`critical_path`]'s greedy walk this maximizes total covered
/// time: for every finished attempt it considers every finished producer
/// attempt of every argument (so a consumer fed by an early attempt of a
/// later-retried task credits the attempt that actually fed it) and
/// keeps the chain with the largest exclusively-owned wall-clock.
/// Processing attempts in finish-time order makes the recurrence a DAG
/// walk even on corrupt streams: edges only ever point backwards.
pub fn longest_paths(events: &[Event], top_k: usize) -> PathAnalysis {
    let f = fold_events(events);

    // All finished attempts in a deterministic topological order: a
    // consumer attempt cannot finish before the producer attempt that
    // fed it, so sorting by (finish, task, attempt) lets the DP below
    // only look backwards.
    let mut nodes: Vec<((u64, u32), TaskTimes)> = f
        .times
        .iter()
        .filter(|(_, tt)| tt.finished.is_some())
        .map(|(&k, &tt)| (k, tt))
        .collect();
    nodes.sort_by_key(|&((task, attempt), tt)| (tt.finished, task, attempt));
    if nodes.is_empty() {
        return PathAnalysis::default();
    }

    // task -> indices of its finished attempts (ascending finish).
    let mut attempts: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, ((task, _), _)) in nodes.iter().enumerate() {
        attempts.entry(*task).or_default().push(i);
    }

    // dp[i]: covered time of the longest chain ending at attempt i;
    // choice[i]: the producer attempt that chain comes through.
    let mut dp = vec![0u64; nodes.len()];
    let mut choice: Vec<Option<usize>> = vec![None; nodes.len()];
    for i in 0..nodes.len() {
        let ((task, _), tt) = nodes[i];
        let fin = tt.finished.unwrap_or(0);
        let sched = tt.scheduled.unwrap_or(0).min(fin);
        // Base case: the chain is just this attempt.
        let mut best = fin - sched;
        let mut pred = None;
        for obj in f.args.get(&task).into_iter().flatten() {
            let Some(p) = f.producer.get(obj) else {
                continue;
            };
            for &j in attempts.get(p).into_iter().flatten() {
                if j >= i {
                    // Sorted by finish time: a producer attempt that
                    // finished after us cannot have fed us.
                    continue;
                }
                let pfin = nodes[j].1.finished.unwrap_or(0);
                let own = fin - pfin.max(sched).min(fin);
                let cand = dp[j] + own;
                if cand > best {
                    best = cand;
                    pred = Some(j);
                }
            }
        }
        dp[i] = best;
        choice[i] = pred;
    }

    // Reconstruct the chain ending at attempt `end` into a CritPath.
    let build = |end: usize| -> (CritPath, Vec<usize>) {
        let mut path = CritPath {
            end_us: nodes[end].1.finished.unwrap_or(0),
            ..CritPath::default()
        };
        let mut members = Vec::new();
        let mut cur = end;
        loop {
            let ((task, _), tt) = nodes[cur];
            let fin = tt.finished.unwrap_or(0);
            let sched = tt.scheduled.unwrap_or(0).min(fin);
            let own_start = match choice[cur] {
                Some(j) => nodes[j].1.finished.unwrap_or(0).max(sched).min(fin),
                None => sched,
            };
            let contribution = fin - own_start;
            path.covered_us += contribution;
            members.push(cur);
            path.tasks.push(CritTask {
                task,
                label: tt.label,
                node: tt.node,
                attempt: tt.attempt,
                queue_us: tt
                    .dequeued
                    .zip(tt.scheduled)
                    .map(|(d, s)| d.saturating_sub(s))
                    .unwrap_or(0),
                stage_us: tt
                    .started
                    .zip(tt.dequeued)
                    .map(|(st, d)| st.saturating_sub(d))
                    .unwrap_or(0),
                exec_us: tt.started.map(|st| fin.saturating_sub(st)).unwrap_or(0),
                fetch_wait_us: f.fetch_wait.get(&task).copied().unwrap_or(0),
                contribution_us: contribution,
            });
            match choice[cur] {
                Some(j) => cur = j,
                None => break,
            }
        }
        (path, members)
    };

    // The main chain ends at the run's last finisher (the last node in
    // finish order — same sink the greedy walk starts from).
    let (longest, main_members) = build(nodes.len() - 1);
    let mut used = vec![false; nodes.len()];
    for &i in &main_members {
        used[i] = true;
    }

    // Near-critical: rank every other attempt's chain by covered time
    // (descending == ascending slack), greedily claiming disjoint
    // chains. Deterministic: ties break on later finish, then task id.
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(dp[i]),
            std::cmp::Reverse(nodes[i].1.finished),
            nodes[i].0,
        )
    });
    let mut near = Vec::new();
    for i in order {
        if near.len() >= top_k {
            break;
        }
        if used[i] {
            continue;
        }
        let (path, members) = build(i);
        // Mark the whole chain: prefixes of a reported chain must not
        // re-emerge as "distinct" near-critical chains of their own.
        for &m in &members {
            used[m] = true;
        }
        let ((end_task, _), tt) = nodes[i];
        near.push(NearPath {
            end_task,
            end_label: tt.label,
            end_us: path.end_us,
            covered_us: path.covered_us,
            slack_us: longest.covered_us.saturating_sub(path.covered_us),
            tasks: path.tasks.iter().map(|t| t.task).collect(),
        });
    }

    PathAnalysis { longest, near }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{DepEvent, FetchWaitEvent, TaskSpan};

    fn task_events(
        task: u64,
        label: &'static str,
        node: u32,
        sched: u64,
        start: u64,
        finish: u64,
    ) -> Vec<Event> {
        let mk = |phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase,
                node,
                label,
                attempt: 0,
                retry: false,
                reason: None,
            }),
        };
        vec![
            mk(TaskPhase::Scheduled, sched),
            mk(TaskPhase::Dequeued, sched),
            mk(TaskPhase::Started, start),
            mk(TaskPhase::Finished, finish),
        ]
    }

    fn dep(task: u64, object: u64, kind: DepKind) -> Event {
        Event {
            at_us: 0,
            kind: EventKind::Dep(DepEvent { task, object, kind }),
        }
    }

    /// Diamond DAG with a known answer:
    ///
    /// ```text
    ///        a (0..10)
    ///       / \
    ///  b (10..30)  c (10..80)     <- c is the slow branch
    ///       \ /
    ///        d (80..100)
    /// ```
    ///
    /// Critical path must be d ← c ← a, covering the full 100 µs.
    #[test]
    fn diamond_dag_follows_slow_branch() {
        // a produces obj 1; b consumes 1, produces 2; c consumes 1,
        // produces 3; d consumes 2 and 3, produces 4.
        let mut events = vec![
            dep(0, 1, DepKind::Output),
            dep(1, 1, DepKind::Arg),
            dep(1, 2, DepKind::Output),
            dep(2, 1, DepKind::Arg),
            dep(2, 3, DepKind::Output),
            dep(3, 2, DepKind::Arg),
            dep(3, 3, DepKind::Arg),
            dep(3, 4, DepKind::Output),
        ];
        events.extend(task_events(0, "a", 0, 0, 0, 10));
        events.extend(task_events(1, "b", 0, 10, 10, 30));
        events.extend(task_events(2, "c", 1, 10, 12, 80));
        events.extend(task_events(3, "d", 0, 80, 80, 100));
        events.sort_by_key(|e| e.at_us);

        let p = critical_path(&events);
        let ids: Vec<u64> = p.tasks.iter().map(|t| t.task).collect();
        assert_eq!(ids, vec![3, 2, 0], "path should be d <- c <- a");
        assert_eq!(p.end_us, 100);
        // d owns 80..100, c owns 10..80, a owns 0..10: full coverage.
        assert_eq!(p.covered_us, 100);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
        let c = &p.tasks[1];
        assert_eq!(c.label, "c");
        assert_eq!(c.queue_us, 0);
        assert_eq!(c.stage_us, 2);
        assert_eq!(c.exec_us, 68);
        assert_eq!(c.contribution_us, 70);
    }

    #[test]
    fn fetch_wait_intervals_attach_to_critical_tasks() {
        let mut events = Vec::new();
        events.push(dep(0, 1, DepKind::Output));
        events.push(dep(1, 1, DepKind::Arg));
        events.extend(task_events(0, "map", 0, 0, 0, 50));
        events.extend(task_events(1, "reduce", 1, 50, 65, 100));
        let fw = |at_us, begin| Event {
            at_us,
            kind: EventKind::FetchWait(FetchWaitEvent {
                task: 1,
                object: 1,
                node: 1,
                begin,
            }),
        };
        events.push(fw(52, true));
        events.push(fw(64, false));
        // Orphan begin: never ended; must not contribute.
        events.push(fw(70, true));
        events.sort_by_key(|e| e.at_us);

        let p = critical_path(&events);
        assert_eq!(p.tasks[0].task, 1);
        assert_eq!(p.tasks[0].fetch_wait_us, 12);
    }

    #[test]
    fn concurrent_fetch_waits_count_elapsed_time_once() {
        let mut events = Vec::new();
        events.extend(task_events(1, "reduce", 0, 0, 40, 100));
        // Waits on objects 10/11/12 overlap: [5,25], [10,30], [28,35].
        // Union is [5,35] = 30 µs, not the 67 µs sum.
        for (obj, b, e) in [(10u64, 5u64, 25u64), (11, 10, 30), (12, 28, 35)] {
            for (at_us, begin) in [(b, true), (e, false)] {
                events.push(Event {
                    at_us,
                    kind: EventKind::FetchWait(FetchWaitEvent {
                        task: 1,
                        object: obj,
                        node: 0,
                        begin,
                    }),
                });
            }
        }
        events.sort_by_key(|e| e.at_us);
        let p = critical_path(&events);
        assert_eq!(p.tasks[0].fetch_wait_us, 30);
    }

    #[test]
    fn retried_task_uses_finishing_attempt() {
        let mut events = Vec::new();
        events.push(dep(0, 1, DepKind::Output));
        // Attempt 0 never finishes (node died); attempt 1 does.
        events.push(Event {
            at_us: 0,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task: 0,
                phase: TaskPhase::Scheduled,
                node: 0,
                label: "map",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        });
        events.extend(task_events_attempt(0, "map", 1, 1, 20, 25, 60));
        let p = critical_path(&events);
        assert_eq!(p.tasks.len(), 1);
        assert_eq!(p.tasks[0].attempt, 1);
        assert_eq!(p.end_us, 60);
        // Contribution starts at its own scheduled time (20), not 0.
        assert_eq!(p.covered_us, 40);
    }

    fn task_events_attempt(
        task: u64,
        label: &'static str,
        node: u32,
        attempt: u32,
        sched: u64,
        start: u64,
        finish: u64,
    ) -> Vec<Event> {
        let mk = |phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase,
                node,
                label,
                attempt,
                retry: attempt > 0,
                reason: None,
            }),
        };
        vec![
            mk(TaskPhase::Scheduled, sched),
            mk(TaskPhase::Dequeued, sched),
            mk(TaskPhase::Started, start),
            mk(TaskPhase::Finished, finish),
        ]
    }

    #[test]
    fn empty_stream_yields_empty_path() {
        let p = critical_path(&[]);
        assert!(p.tasks.is_empty());
        assert_eq!(p.coverage(), 0.0);
        let a = longest_paths(&[], 3);
        assert!(a.longest.tasks.is_empty());
        assert!(a.near.is_empty());
    }

    /// A DAG where the greedy latest-finishing-producer walk picks the
    /// wrong branch:
    ///
    /// ```text
    ///   a (0..10) -> b (10..70) \
    ///                            d (80..100)
    ///         c (75..80, short) /
    /// ```
    ///
    /// c finishes last among d's producers so the greedy walk takes
    /// d <- c (covered 25 µs); the longest chain is d <- b <- a
    /// (covered 90 µs).
    #[test]
    fn dp_beats_greedy_on_late_short_producer() {
        let mut events = vec![
            dep(0, 1, DepKind::Output),
            dep(1, 1, DepKind::Arg),
            dep(1, 2, DepKind::Output),
            dep(2, 3, DepKind::Output),
            dep(3, 2, DepKind::Arg),
            dep(3, 3, DepKind::Arg),
        ];
        events.extend(task_events(0, "a", 0, 0, 0, 10));
        events.extend(task_events(1, "b", 0, 10, 10, 70));
        events.extend(task_events(2, "c", 1, 75, 75, 80));
        events.extend(task_events(3, "d", 0, 80, 80, 100));
        events.sort_by_key(|e| e.at_us);

        let greedy = critical_path(&events);
        let greedy_ids: Vec<u64> = greedy.tasks.iter().map(|t| t.task).collect();
        assert_eq!(greedy_ids, vec![3, 2], "greedy follows the late producer");
        assert_eq!(greedy.covered_us, 25);

        let a = longest_paths(&events, 3);
        let dp_ids: Vec<u64> = a.longest.tasks.iter().map(|t| t.task).collect();
        assert_eq!(dp_ids, vec![3, 1, 0], "DP finds d <- b <- a");
        assert_eq!(a.longest.covered_us, 90);
        assert_eq!(a.longest.end_us, 100);
        // The skipped branch shows up as the top near-critical chain.
        assert_eq!(a.near.len(), 1);
        assert_eq!(a.near[0].end_task, 2);
        assert_eq!(a.near[0].covered_us, 5);
        assert_eq!(a.near[0].slack_us, 85);
    }

    /// DP runs over *all* finished attempts: a consumer fed by an early
    /// attempt of a later-retried producer credits the attempt that
    /// actually fed it, not the late re-execution.
    #[test]
    fn dp_credits_the_attempt_that_fed_the_consumer() {
        let mut events = vec![dep(0, 1, DepKind::Output), dep(1, 1, DepKind::Arg)];
        // Producer attempt 0 finishes at 30; re-executed attempt 1 (say
        // the object was lost later) finishes at 90 — after the
        // consumer already finished at 50.
        events.extend(task_events(0, "map", 0, 0, 0, 30));
        events.extend(task_events_attempt(0, "map", 0, 1, 60, 60, 90));
        events.extend(task_events(1, "reduce", 1, 30, 30, 50));
        events.sort_by_key(|e| e.at_us);

        let a = longest_paths(&events, 3);
        // Last finisher is map attempt 1, so the main chain is just it.
        assert_eq!(a.longest.end_us, 90);
        assert_eq!(a.longest.tasks.len(), 1);
        assert_eq!(a.longest.covered_us, 30);
        // The consumer's chain goes through attempt 0 (finish 30), not
        // the future attempt: reduce owns 30..50, map#0 owns 0..30.
        let near: Vec<_> = a.near.iter().map(|n| (n.end_task, n.covered_us)).collect();
        assert_eq!(near, vec![(1, 50)]);
        assert_eq!(a.near[0].tasks, vec![1, 0]);
    }

    #[test]
    fn near_paths_are_disjoint_and_slack_ranked() {
        // One shared source, three independent tails of decreasing
        // length; tail0 is critical, tails 1 and 2 near-critical.
        let mut events = vec![dep(0, 1, DepKind::Output)];
        events.extend(task_events(0, "map", 0, 0, 0, 10));
        for (i, fin) in [(1u64, 100u64), (2, 80), (3, 60)] {
            events.push(dep(i, 1, DepKind::Arg));
            events.push(dep(i, 1 + i, DepKind::Output));
            events.extend(task_events(i, "reduce", i as u32, 10, 10, fin));
        }
        events.sort_by_key(|e| e.at_us);

        let a = longest_paths(&events, 5);
        assert_eq!(a.longest.covered_us, 100);
        let ids: Vec<u64> = a.longest.tasks.iter().map(|t| t.task).collect();
        assert_eq!(ids, vec![1, 0]);
        // Both tails reported, longer (less slack) first; near chains
        // share the map source with the critical chain, and the map task
        // itself never re-emerges as a chain of its own.
        let near: Vec<_> = a
            .near
            .iter()
            .map(|n| (n.end_task, n.covered_us, n.slack_us))
            .collect();
        assert_eq!(near, vec![(2, 80, 20), (3, 60, 40)]);
        assert_eq!(a.near[0].tasks, vec![2, 0]);
        assert_eq!(a.near[1].tasks, vec![3, 0]);
    }
}
