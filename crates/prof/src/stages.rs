//! Per-stage straggler and skew statistics.
//!
//! A "stage" is the set of task executions sharing a label (`map`,
//! `reduce`, …). For each we report the execution-time distribution
//! (p50/p99/max — the straggler signal) and the output-bytes skew
//! (max/mean across tasks — the partitioning-quality signal, joined
//! from [`DepKind::Output`] edges and `Created` object sizes).

use std::collections::{BTreeMap, HashMap};

use exo_trace::{DepKind, Event, EventKind, ObjectPhase, TaskPhase};

/// Distribution summary for one stage (label).
#[derive(Debug, Clone)]
pub struct StageStats {
    pub label: &'static str,
    /// Finished task executions (attempts count separately).
    pub tasks: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    /// Mean / max output bytes per task (0 when sizes are unknown).
    pub mean_bytes: u64,
    pub max_bytes: u64,
}

impl StageStats {
    /// Straggler ratio: how much longer the slowest task ran vs the
    /// median. ~1 means a tight stage; > 2 means a long tail.
    pub fn straggler_ratio(&self) -> f64 {
        if self.p50_us == 0 {
            return 1.0;
        }
        self.max_us as f64 / self.p50_us as f64
    }

    /// Bytes skew: max / mean output bytes. 1 is perfectly balanced.
    pub fn bytes_skew(&self) -> f64 {
        if self.mean_bytes == 0 {
            return 1.0;
        }
        self.max_bytes as f64 / self.mean_bytes as f64
    }
}

/// Upper nearest-rank percentile: the smallest value with at least a
/// `p` fraction of samples ≤ it (ceil rank), so tail percentiles of
/// small stages surface stragglers instead of rounding them away.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Computes per-stage stats from the stream, ordered by first appearance.
pub fn stage_stats(events: &[Event]) -> Vec<StageStats> {
    // (task, attempt) -> start; label -> durations.
    let mut started: HashMap<(u64, u32), u64> = HashMap::new();
    let mut durations: HashMap<&'static str, Vec<u64>> = HashMap::new();
    let mut order: Vec<&'static str> = Vec::new();
    // Output-bytes join: task -> produced objects (ordered — iterated
    // for the per-label grouping below); object -> bytes.
    let mut outputs: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut obj_bytes: HashMap<u64, u64> = HashMap::new();
    let mut task_label: HashMap<u64, &'static str> = HashMap::new();

    for ev in events {
        match &ev.kind {
            EventKind::Task(t) => match t.phase {
                TaskPhase::Started => {
                    started.insert((t.task, t.attempt), ev.at_us);
                }
                TaskPhase::Finished => {
                    let start = started.remove(&(t.task, t.attempt)).unwrap_or(ev.at_us);
                    if !durations.contains_key(t.label) {
                        order.push(t.label);
                    }
                    durations
                        .entry(t.label)
                        .or_default()
                        .push(ev.at_us.saturating_sub(start));
                    task_label.insert(t.task, t.label);
                }
                _ => {}
            },
            EventKind::Dep(d) if d.kind == DepKind::Output => {
                outputs.entry(d.task).or_default().push(d.object);
            }
            EventKind::Object(o) if o.phase == ObjectPhase::Created => {
                // Last Created wins (reconstruction re-creates objects
                // with the same size).
                obj_bytes.insert(o.object, o.bytes);
            }
            // Other dep kinds and object phases, waits, I/O, resource,
            // failure, and incident events carry nothing stage stats
            // report; enumerated so a new variant is a compile error.
            EventKind::Dep(_)
            | EventKind::Object(_)
            | EventKind::FetchWait(_)
            | EventKind::Io(_)
            | EventKind::Resource(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_)
            | EventKind::Job(_) => {}
        }
    }

    // Total output bytes per task, grouped by label.
    let mut bytes_by_label: HashMap<&'static str, Vec<u64>> = HashMap::new();
    for (task, objs) in &outputs {
        let Some(label) = task_label.get(task) else {
            continue;
        };
        let total: u64 = objs.iter().filter_map(|o| obj_bytes.get(o).copied()).sum();
        if total > 0 {
            bytes_by_label.entry(label).or_default().push(total);
        }
    }

    order
        .into_iter()
        .map(|label| {
            let mut durs = durations.remove(label).unwrap_or_default();
            durs.sort_unstable();
            let bytes = bytes_by_label.remove(label).unwrap_or_default();
            let (mean_bytes, max_bytes) = if bytes.is_empty() {
                (0, 0)
            } else {
                (
                    bytes.iter().sum::<u64>() / bytes.len() as u64,
                    *bytes.iter().max().expect("non-empty"),
                )
            };
            StageStats {
                label,
                tasks: durs.len() as u64,
                p50_us: percentile(&durs, 0.50),
                p99_us: percentile(&durs, 0.99),
                max_us: *durs.last().unwrap_or(&0),
                mean_bytes,
                max_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{DepEvent, ObjectEvent, TaskSpan};

    fn run(task: u64, label: &'static str, start: u64, finish: u64) -> [Event; 2] {
        let mk = |phase, at_us| Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase,
                node: 0,
                label,
                attempt: 0,
                retry: false,
                reason: None,
            }),
        };
        [
            mk(TaskPhase::Started, start),
            mk(TaskPhase::Finished, finish),
        ]
    }

    fn output(task: u64, object: u64, bytes: u64) -> [Event; 2] {
        [
            Event {
                at_us: 0,
                kind: EventKind::Dep(DepEvent {
                    task,
                    object,
                    kind: DepKind::Output,
                }),
            },
            Event {
                at_us: 1,
                kind: EventKind::Object(ObjectEvent {
                    object,
                    phase: ObjectPhase::Created,
                    node: 0,
                    src: None,
                    bytes,
                }),
            },
        ]
    }

    #[test]
    fn distribution_and_skew_per_label() {
        let mut events = Vec::new();
        for i in 0..9 {
            events.extend(run(i, "map", 0, 100));
        }
        events.extend(run(9, "map", 0, 400)); // the straggler
        events.extend(run(10, "reduce", 400, 450));
        events.extend(output(0, 100, 1_000));
        events.extend(output(1, 101, 1_000));
        events.extend(output(2, 102, 4_000));

        let stats = stage_stats(&events);
        assert_eq!(stats.len(), 2);
        let map = &stats[0];
        assert_eq!(map.label, "map");
        assert_eq!(map.tasks, 10);
        assert_eq!(map.p50_us, 100);
        assert_eq!(map.max_us, 400);
        assert!(map.straggler_ratio() > 3.9);
        // Bytes: 1000, 1000, 4000 -> mean 2000, max 4000, skew 2.
        assert_eq!(map.mean_bytes, 2_000);
        assert_eq!(map.max_bytes, 4_000);
        assert!((map.bytes_skew() - 2.0).abs() < 1e-9);
        assert_eq!(stats[1].label, "reduce");
        assert_eq!(stats[1].tasks, 1);
    }

    #[test]
    fn p99_tracks_the_tail() {
        let mut events = Vec::new();
        for i in 0..100 {
            let dur = if i == 99 { 1_000 } else { 10 };
            events.extend(run(i, "map", 0, dur));
        }
        let stats = stage_stats(&events);
        assert_eq!(stats[0].p50_us, 10);
        assert_eq!(stats[0].p99_us, 1_000);
    }
}
