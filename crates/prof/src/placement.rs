//! Placement-quality attribution: how many argument bytes the scheduler's
//! `Default`-strategy decisions pulled over the network, and how many of
//! those a better-informed placement would have kept local.
//!
//! For every `Scheduled` event whose [`exo_trace::PlaceReason`] marks a
//! *policy* decision (`LocalityHit`, `LeastLoaded`, `BoundMatch` — spread
//! and affinity placements are explicit application requests and not the
//! policy's to improve), we replay object locations up to that instant
//! and compare the argument bytes resident on the chosen node against
//! the best single node:
//!
//! - `transfer_bytes` — argument bytes *not* on the chosen node, i.e.
//!   bytes the decision committed to fetching.
//! - `avoidable_bytes` — `best_local − chosen_local` summed over
//!   decisions: bytes a placement on the byte-richest node would have
//!   kept local. Zero means every policy decision was locality-optimal
//!   (it may still have been right to trade locality for load or device
//!   fit — this is an attribution, not a verdict).
//!
//! Object locations are tracked from `Created` / `Transferred` /
//! `Restored` / `Reconstructed` / `Fallback` events. Copies are *not*
//! removed on evict/spill: a spilled object is still cheap to reach from
//! its node, and eviction racing a schedule decision is rare enough that
//! the approximation keeps the replay single-pass.

use std::collections::{HashMap, HashSet};

use exo_trace::{DepKind, Event, EventKind, Json, ObjectPhase, PlaceReason, TaskPhase};

/// Aggregate placement quality for one run.
#[derive(Debug, Clone, Default)]
pub struct PlacementQuality {
    /// Name of the policy that made the decisions (from the trace);
    /// `None` when the stream contains no policy-made placements.
    pub policy: Option<&'static str>,
    /// Policy-made placement decisions (locality/load/bound reasons).
    pub decisions: u64,
    /// Decisions whose reason was `LocalityHit`.
    pub locality_hits: u64,
    /// Decisions whose reason was `BoundMatch`.
    pub bound_matches: u64,
    /// Argument bytes committed to remote fetches by those decisions.
    pub transfer_bytes: u64,
    /// Argument bytes a placement on the byte-richest node would have
    /// kept local, summed over decisions.
    pub avoidable_bytes: u64,
}

impl PlacementQuality {
    /// Fraction of argument bytes moved that a locality-optimal
    /// placement would have avoided (0 when nothing moved).
    pub fn avoidable_fraction(&self) -> f64 {
        if self.transfer_bytes == 0 {
            0.0
        } else {
            self.avoidable_bytes as f64 / self.transfer_bytes as f64
        }
    }

    /// JSON fragment embedded under `"placement"` in profile documents.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("policy", self.policy.unwrap_or("none"))
            .set("decisions", self.decisions)
            .set("locality_hits", self.locality_hits)
            .set("bound_matches", self.bound_matches)
            .set("transfer_bytes", self.transfer_bytes)
            .set("avoidable_bytes", self.avoidable_bytes)
            .set("avoidable_fraction", self.avoidable_fraction())
    }
}

/// Replays the event stream and attributes placement quality.
pub fn placement_quality(events: &[Event]) -> PlacementQuality {
    // Pass 1: argument edges are immutable per task, so collect them up
    // front (Dep events are emitted at submission, but lineage retries
    // re-schedule without re-emitting them).
    let mut args: HashMap<u64, Vec<u64>> = HashMap::new();
    for ev in events {
        if let EventKind::Dep(d) = &ev.kind {
            if d.kind == DepKind::Arg {
                let v = args.entry(d.task).or_default();
                if !v.contains(&d.object) {
                    v.push(d.object);
                }
            }
        }
    }

    // Pass 2: replay object locations in time order and score each
    // policy-made decision against the state the scheduler saw.
    let mut holders: HashMap<u64, (u64, HashSet<u32>)> = HashMap::new();
    let mut q = PlacementQuality::default();
    for ev in events {
        match &ev.kind {
            EventKind::Object(o) => match o.phase {
                ObjectPhase::Created
                | ObjectPhase::Transferred
                | ObjectPhase::Restored
                | ObjectPhase::Reconstructed
                | ObjectPhase::Fallback => {
                    let e = holders.entry(o.object).or_default();
                    e.0 = e.0.max(o.bytes);
                    e.1.insert(o.node);
                }
                ObjectPhase::Spilled | ObjectPhase::Evicted => {}
            },
            EventKind::Task(t) if t.phase == TaskPhase::Scheduled => {
                let Some(p) = t.reason else { continue };
                if !matches!(
                    p.reason,
                    PlaceReason::LocalityHit | PlaceReason::LeastLoaded | PlaceReason::BoundMatch
                ) {
                    continue;
                }
                q.decisions += 1;
                q.policy.get_or_insert(p.policy);
                match p.reason {
                    PlaceReason::LocalityHit => q.locality_hits += 1,
                    PlaceReason::BoundMatch => q.bound_matches += 1,
                    _ => {}
                }
                let Some(task_args) = args.get(&t.task) else {
                    continue;
                };
                let mut total = 0u64;
                let mut per_node: HashMap<u32, u64> = HashMap::new();
                for obj in task_args {
                    let Some((bytes, nodes)) = holders.get(obj) else {
                        continue;
                    };
                    total += bytes;
                    for &n in nodes {
                        *per_node.entry(n).or_default() += bytes;
                    }
                }
                let local = per_node.get(&t.node).copied().unwrap_or(0);
                let best = per_node.values().copied().max().unwrap_or(0);
                q.transfer_bytes += total - local;
                q.avoidable_bytes += best - local;
            }
            // Non-Scheduled task phases and everything else carry no
            // placement evidence; enumerated so a new variant is a
            // compile error, not a silently unscored event.
            EventKind::Task(_)
            | EventKind::Dep(_)
            | EventKind::FetchWait(_)
            | EventKind::Io(_)
            | EventKind::Resource(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_)
            | EventKind::Job(_) => {}
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{DepEvent, ObjectEvent, Placement, TaskSpan};

    fn created(object: u64, node: u32, bytes: u64, at_us: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Object(ObjectEvent {
                object,
                phase: ObjectPhase::Created,
                node,
                src: None,
                bytes,
            }),
        }
    }

    fn arg(task: u64, object: u64) -> Event {
        Event {
            at_us: 0,
            kind: EventKind::Dep(DepEvent {
                task,
                object,
                kind: DepKind::Arg,
            }),
        }
    }

    fn scheduled(task: u64, node: u32, reason: PlaceReason, at_us: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase: TaskPhase::Scheduled,
                node,
                label: "reduce",
                attempt: 0,
                retry: false,
                reason: Some(Placement::bare(reason)),
            }),
        }
    }

    #[test]
    fn optimal_placement_has_no_avoidable_bytes() {
        let events = vec![
            arg(7, 1),
            arg(7, 2),
            created(1, 0, 100, 10),
            created(2, 0, 50, 10),
            scheduled(7, 0, PlaceReason::LocalityHit, 20),
        ];
        let q = placement_quality(&events);
        assert_eq!(q.decisions, 1);
        assert_eq!(q.locality_hits, 1);
        assert_eq!(q.transfer_bytes, 0);
        assert_eq!(q.avoidable_bytes, 0);
    }

    #[test]
    fn misplacement_is_attributed() {
        // 100 B on node 0, 40 B on node 1; scheduling on node 1 moves
        // 100 B, of which 60 were avoidable by going to node 0.
        let events = vec![
            arg(7, 1),
            arg(7, 2),
            created(1, 0, 100, 10),
            created(2, 1, 40, 10),
            scheduled(7, 1, PlaceReason::LeastLoaded, 20),
        ];
        let q = placement_quality(&events);
        assert_eq!(q.transfer_bytes, 100);
        assert_eq!(q.avoidable_bytes, 60);
        assert!((q.avoidable_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn spread_and_affinity_placements_are_ignored() {
        let events = vec![
            arg(7, 1),
            created(1, 0, 100, 10),
            scheduled(7, 1, PlaceReason::Spread, 20),
            scheduled(8, 1, PlaceReason::Affinity, 21),
        ];
        let q = placement_quality(&events);
        assert_eq!(q.decisions, 0);
        assert_eq!(q.transfer_bytes, 0);
        assert_eq!(q.policy, None);
    }

    #[test]
    fn bound_match_decisions_are_counted_and_policy_named() {
        let events = vec![
            arg(7, 1),
            created(1, 0, 100, 10),
            Event {
                at_us: 20,
                kind: EventKind::Task(TaskSpan {
                    job: 0,
                    task: 7,
                    phase: TaskPhase::Scheduled,
                    node: 0,
                    label: "reduce",
                    attempt: 0,
                    retry: false,
                    reason: Some(Placement {
                        reason: PlaceReason::BoundMatch,
                        policy: "bound_aware",
                        score: 123.0,
                        slots_free: 8,
                        slots_total: 8,
                    }),
                }),
            },
        ];
        let q = placement_quality(&events);
        assert_eq!(q.bound_matches, 1);
        assert_eq!(q.policy, Some("bound_aware"));
        let json = q.to_json().render();
        assert!(json.contains(r#""policy":"bound_aware""#), "{json}");
    }
}
