//! Per-job statistics for multi-job traces: admission → finish timing
//! (job completion time), per-job task counts, and a per-job critical
//! path computed over just that job's slice of the event stream.
//!
//! Single-job traces (no [`exo_trace::JobEvent`]s, or only job 0) yield
//! a list the report layer suppresses, so legacy renderings stay
//! byte-identical.

use std::collections::{BTreeMap, HashSet};

use exo_trace::{Event, EventKind, JobPhase, TaskPhase};

use crate::critpath::{critical_path, CritPath};

/// One job's derived statistics.
#[derive(Debug, Clone)]
pub struct JobStat {
    pub job: u32,
    pub tenant: u32,
    pub label: &'static str,
    /// When admission control admitted the job.
    pub admitted_us: u64,
    /// When the job's driver finished (falls back to the job's last
    /// task-finish when the trace ends before `FinishJob`).
    pub finished_us: u64,
    pub tasks_finished: u64,
    /// Critical path over this job's tasks only.
    pub critpath: CritPath,
}

impl JobStat {
    /// Job completion time: admission → finish, µs.
    pub fn jct_us(&self) -> u64 {
        self.finished_us.saturating_sub(self.admitted_us)
    }
}

struct Partial {
    tenant: u32,
    label: &'static str,
    admitted_us: Option<u64>,
    finished_us: Option<u64>,
    tasks_finished: u64,
    last_task_us: u64,
    /// Raw ids of the job's tasks, for slicing task-scoped events.
    task_ids: HashSet<u64>,
}

/// Derives per-job stats from a retained event stream. Empty when the
/// stream carries no job lifecycle events (pre-multi-job traces).
pub fn job_stats(events: &[Event]) -> Vec<JobStat> {
    let mut jobs: BTreeMap<u32, Partial> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::Job(j) => {
                let p = jobs.entry(j.job).or_insert_with(|| Partial {
                    tenant: j.tenant,
                    label: j.label,
                    admitted_us: None,
                    finished_us: None,
                    tasks_finished: 0,
                    last_task_us: 0,
                    task_ids: HashSet::new(),
                });
                p.tenant = j.tenant;
                p.label = j.label;
                match j.phase {
                    // `Submitted` only sets the admission time when no
                    // `Admitted` edge follows (it never should).
                    JobPhase::Submitted => {
                        p.admitted_us.get_or_insert(ev.at_us);
                    }
                    JobPhase::Admitted => p.admitted_us = Some(ev.at_us),
                    JobPhase::Finished => p.finished_us = Some(ev.at_us),
                }
            }
            EventKind::Task(t) => {
                if let Some(p) = jobs.get_mut(&t.job) {
                    p.task_ids.insert(t.task);
                    if t.phase == TaskPhase::Finished {
                        p.tasks_finished += 1;
                        p.last_task_us = p.last_task_us.max(ev.at_us);
                    }
                }
            }
            EventKind::Object(_)
            | EventKind::Dep(_)
            | EventKind::FetchWait(_)
            | EventKind::Io(_)
            | EventKind::Resource(_)
            | EventKind::Failure(_)
            | EventKind::Incident(_) => {}
        }
    }
    jobs.into_iter()
        .map(|(job, p)| {
            // Slice out the job's task-scoped events (task spans, dep
            // edges, fetch-waits) and run the standard critical-path
            // walk over just them. Membership is by observed task id,
            // so this needs no knowledge of the runtime's id packing.
            let slice: Vec<Event> = events
                .iter()
                .filter(|ev| match &ev.kind {
                    EventKind::Task(t) => t.job == job,
                    EventKind::Dep(d) => p.task_ids.contains(&d.task),
                    EventKind::FetchWait(w) => p.task_ids.contains(&w.task),
                    EventKind::Object(_)
                    | EventKind::Io(_)
                    | EventKind::Resource(_)
                    | EventKind::Failure(_)
                    | EventKind::Incident(_)
                    | EventKind::Job(_) => false,
                })
                .cloned()
                .collect();
            JobStat {
                job,
                tenant: p.tenant,
                label: p.label,
                admitted_us: p.admitted_us.unwrap_or(0),
                finished_us: p.finished_us.unwrap_or(p.last_task_us),
                tasks_finished: p.tasks_finished,
                critpath: critical_path(&slice),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_trace::{EventKind, JobEvent, TaskSpan};

    fn task_span(at_us: u64, job: u32, task: u64, phase: TaskPhase) -> Event {
        Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                task,
                job,
                phase,
                node: 0,
                label: "t",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        }
    }

    fn job_event(at_us: u64, job: u32, tenant: u32, phase: JobPhase) -> Event {
        Event {
            at_us,
            kind: EventKind::Job(JobEvent {
                job,
                tenant,
                phase,
                label: "j",
            }),
        }
    }

    #[test]
    fn empty_without_job_events() {
        let events = vec![
            task_span(0, 0, 1, TaskPhase::Started),
            task_span(10, 0, 1, TaskPhase::Finished),
        ];
        assert!(job_stats(&events).is_empty());
    }

    #[test]
    fn per_job_timing_counts_and_paths_are_sliced() {
        let t0 = 1u64 << 40; // job 1's first task under the packed-id scheme
        let events = vec![
            job_event(0, 0, 0, JobPhase::Admitted),
            job_event(5, 1, 2, JobPhase::Admitted),
            task_span(0, 0, 0, TaskPhase::Scheduled),
            task_span(0, 0, 0, TaskPhase::Started),
            task_span(40, 0, 0, TaskPhase::Finished),
            task_span(5, 1, t0, TaskPhase::Scheduled),
            task_span(5, 1, t0, TaskPhase::Started),
            task_span(100, 1, t0, TaskPhase::Finished),
            job_event(50, 0, 0, JobPhase::Finished),
            job_event(120, 1, 2, JobPhase::Finished),
        ];
        let stats = job_stats(&events);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].job, 0);
        assert_eq!(stats[0].jct_us(), 50);
        assert_eq!(stats[0].tasks_finished, 1);
        assert_eq!(stats[0].critpath.tasks.len(), 1);
        assert_eq!(stats[1].tenant, 2);
        assert_eq!(stats[1].jct_us(), 115);
        assert_eq!(stats[1].critpath.tasks.len(), 1);
        // Job 1's path ends at its own last finish, not the stream's.
        assert_eq!(stats[1].critpath.end_us, 100);
        assert_eq!(stats[0].critpath.end_us, 40);
    }
}
