//! Bottleneck attribution: slice the run into fixed-width intervals and
//! classify each one by what the cluster was limited by, using the
//! periodic [`ResourceSample`]s plus raw I/O / transfer / spill events.
//!
//! The output is a *bound profile* — e.g. `disk 61% / net 22% / cpu 9% /
//! alloc-stall 5% / idle 3%` — the first thing to read when deciding
//! where optimisation effort goes. Utilisations are measured against the
//! hardware capacities in [`DeviceCaps`], so "disk-bound" means "the
//! disks were near their sequential ceiling", not "disk was the busiest
//! of an idle lot".

use exo_sim::DeviceCaps;
use exo_trace::{Event, EventKind, ObjectPhase};

/// What an interval of the run was limited by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// CPU slots were the scarce resource.
    Cpu,
    /// Disk bandwidth was the scarce resource.
    Disk,
    /// Network bandwidth was the scarce resource.
    Net,
    /// The object store was full and actively spilling/restoring:
    /// progress gated on allocation, not raw device speed.
    AllocStall,
    /// Nothing near capacity — scheduler gaps, dependency stalls, tail.
    Idle,
}

impl Bound {
    pub fn name(&self) -> &'static str {
        match self {
            Bound::Cpu => "cpu",
            Bound::Disk => "disk",
            Bound::Net => "net",
            Bound::AllocStall => "alloc-stall",
            Bound::Idle => "idle",
        }
    }

    pub const ALL: [Bound; 5] = [
        Bound::Disk,
        Bound::Net,
        Bound::Cpu,
        Bound::AllocStall,
        Bound::Idle,
    ];
}

/// One classified slice of the run.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    pub start_us: u64,
    pub end_us: u64,
    pub bound: Bound,
    /// Mean CPU-slot occupancy across samples in the slice (0..=1).
    pub cpu_util: f64,
    /// Disk bytes moved / what the cluster's disks could move (0..+).
    pub disk_util: f64,
    /// Transfer bytes moved / what the cluster's NICs could move (0..+).
    pub net_util: f64,
    /// Peak store occupancy across samples in the slice (0..=1).
    pub store_frac: f64,
}

/// The run's bound profile: classified intervals plus their histogram.
#[derive(Debug, Clone, Default)]
pub struct BoundProfile {
    pub intervals: Vec<Interval>,
    pub end_us: u64,
}

impl BoundProfile {
    /// Fraction of the run bound by `b` (0..=1). All fractions sum to
    /// 1 when the run is non-empty (every slice gets exactly one bound).
    pub fn fraction(&self, b: Bound) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let n = self.intervals.iter().filter(|i| i.bound == b).count();
        n as f64 / self.intervals.len() as f64
    }

    /// The dominant bound, ignoring idle unless everything is idle.
    pub fn dominant(&self) -> Bound {
        Bound::ALL
            .into_iter()
            .filter(|b| *b != Bound::Idle)
            .max_by(|a, b| {
                self.fraction(*a)
                    .partial_cmp(&self.fraction(*b))
                    .expect("fractions are finite")
            })
            .filter(|b| self.fraction(*b) > 0.0)
            .unwrap_or(Bound::Idle)
    }

    /// `disk 61% / net 22% / cpu 9% / alloc-stall 5% / idle 3%`, with
    /// zero-share bounds omitted.
    pub fn one_line(&self) -> String {
        let mut parts: Vec<(Bound, f64)> = Bound::ALL
            .into_iter()
            .map(|b| (b, self.fraction(b)))
            .filter(|(_, f)| *f > 0.0)
            .collect();
        parts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        if parts.is_empty() {
            return "no data".to_string();
        }
        parts
            .iter()
            .map(|(b, f)| format!("{} {:.0}%", b.name(), f * 100.0))
            .collect::<Vec<_>>()
            .join(" / ")
    }
}

/// A utilisation above this is "near capacity" for classification.
const BOUND_THRESHOLD: f64 = 0.4;
/// Store occupancy above this plus spill traffic means allocation stall.
const STORE_FULL_FRAC: f64 = 0.95;
/// Target number of slices; short runs get fewer (≥ 1 µs each).
const TARGET_SLICES: u64 = 120;

/// Classifies the run in `events` against the cluster-wide capacities in
/// `caps` (per-node capacities summed).
pub fn attribute(events: &[Event], caps: &DeviceCaps) -> BoundProfile {
    AttributionPass::scan(events, caps).cluster(caps)
}

/// Per-node bound profiles, one per node in id order. Each node's slices
/// are classified against *that node's* capacities, so on a mixed
/// HDD+SSD cluster the same byte stream reads as disk-bound on the slow
/// nodes and idle (or net-bound) on the fast ones. All profiles share
/// the run's global end time and slice grid, so each node's fractions
/// tile the makespan and sum to 1.
pub fn attribute_per_node(events: &[Event], caps: &DeviceCaps) -> Vec<BoundProfile> {
    let pass = AttributionPass::scan(events, caps);
    (0..caps.nodes())
        .map(|n| pass.node(caps, n as u32))
        .collect()
}

/// The cluster profile and every per-node profile from **one** scan of
/// the event stream — what `profile()` / report builders should call.
/// Equivalent to `(attribute(..), attribute_per_node(..))` bit for bit,
/// without the 1 + N re-scans.
pub fn attribute_all(events: &[Event], caps: &DeviceCaps) -> (BoundProfile, Vec<BoundProfile>) {
    let pass = AttributionPass::scan(events, caps);
    let per_node = (0..caps.nodes())
        .map(|n| pass.node(caps, n as u32))
        .collect();
    (pass.cluster(caps), per_node)
}

/// Per-slice accumulation for one node (or, for `net_cluster`, the whole
/// wire). All fields are exact-integer sums (CPU slot counts are small
/// integers widened to `f64`), so summing them across nodes at readout
/// is order-independent and reproduces the old event-order folds bit for
/// bit.
#[derive(Default, Clone, Copy)]
struct Acc {
    cpu_busy: f64,
    cpu_total: f64,
    samples: u64,
    disk_bytes: u64,
    net_bytes: u64,
    spill_ops: u64,
}

/// The memoized single pass behind [`attribute`], [`attribute_per_node`]
/// and [`attribute_all`]: one sweep over the events fills per-slice,
/// per-node accumulators plus a cluster-wide transfer track; every view
/// (whole cluster or a single node) is then a cheap readout over the
/// accumulators. Previously each view re-scanned the full stream — the
/// per-node report on an N-node cluster cost N + 1 passes.
struct AttributionPass {
    end_us: u64,
    slice_us: u64,
    slices: usize,
    nodes: usize,
    /// `[slice * nodes + node]` — everything attributable to one node.
    /// Transfer bytes are credited to *both* endpoints' cells (their
    /// single-node views each count the wire), matching the old
    /// per-selection scan.
    per_node: Vec<Acc>,
    /// Per-slice transfer bytes counted **once** per transfer — the
    /// cluster view's net track (endpoints within the cluster share the
    /// same wire, so summing the per-node cells would double-count).
    net_cluster: Vec<u64>,
    /// Events whose node id falls outside the capacity card (possible in
    /// synthetic streams). The cluster view counts them — it always did;
    /// no single-node view can claim them.
    slop: Vec<Acc>,
    /// Per-slice, per-node peak store sample (`None` = node not sampled
    /// in that slice; its last known level carries forward at readout).
    store_peak: Vec<Option<u64>>,
}

impl AttributionPass {
    fn scan(events: &[Event], caps: &DeviceCaps) -> AttributionPass {
        let end_us = events.iter().map(|e| e.at_us).max().unwrap_or(0);
        let nodes = caps.nodes();
        if end_us == 0 {
            return AttributionPass {
                end_us,
                slice_us: 1,
                slices: 0,
                nodes,
                per_node: Vec::new(),
                net_cluster: Vec::new(),
                slop: Vec::new(),
                store_peak: Vec::new(),
            };
        }
        let slice_us = (end_us / TARGET_SLICES).max(1);
        let slices = end_us.div_ceil(slice_us) as usize;
        let mut pass = AttributionPass {
            end_us,
            slice_us,
            slices,
            nodes,
            per_node: vec![Acc::default(); slices * nodes],
            net_cluster: vec![0; slices],
            slop: vec![Acc::default(); slices],
            store_peak: vec![None; slices * nodes],
        };
        let idx = |at_us: u64| (((at_us.min(end_us - 1)) / slice_us) as usize).min(slices - 1);

        // Reconstructed per-node FIFO transmit cursor. Transfer events
        // carry their *submit* time, and staging submits whole stages in
        // bursts at a single instant — crediting the bytes to the submit
        // slice would read as one absurd spike followed by silence.
        // Replaying the source's transmit queue (transfers serve
        // back-to-back at the NIC's bandwidth, exactly the runtime's
        // model) recovers when each transfer actually occupied the wire,
        // and the bytes are smeared over that service window.
        let mut tx_free: Vec<u64> = vec![0; nodes];
        for ev in events {
            let i = idx(ev.at_us);
            match &ev.kind {
                EventKind::Resource(r) => {
                    let a = if (r.node as usize) < nodes {
                        let cell = &mut pass.store_peak[i * nodes + r.node as usize];
                        *cell = Some(cell.unwrap_or(0).max(r.store_used));
                        &mut pass.per_node[i * nodes + r.node as usize]
                    } else {
                        &mut pass.slop[i]
                    };
                    a.cpu_busy += r.cpu_slots_busy as f64;
                    a.cpu_total += r.cpu_slots_total.max(1) as f64;
                    a.samples += 1;
                }
                // Restore reads + output/spill writes all queue on the
                // same disks; direction doesn't matter for saturation.
                EventKind::Io(io) => {
                    let a = if (io.node as usize) < nodes {
                        &mut pass.per_node[i * nodes + io.node as usize]
                    } else {
                        &mut pass.slop[i]
                    };
                    a.disk_bytes += io.bytes;
                }
                EventKind::Object(o) => match o.phase {
                    // A transfer occupies the receiver's rx direction and
                    // the sender's tx direction: credit the service
                    // window's bytes to both endpoints' cells (each
                    // single-node view sees its share of the wire) and
                    // once to the cluster track.
                    ObjectPhase::Transferred => {
                        let window = o.src.filter(|s| (*s as usize) < nodes).map(|s| {
                            let bw = caps.per_node[s as usize].nic_bw.max(1.0);
                            let start = ev.at_us.max(tx_free[s as usize]);
                            let end = start + ((o.bytes as f64 * 1e6 / bw).ceil() as u64).max(1);
                            tx_free[s as usize] = end;
                            (start, end)
                        });
                        let (start, end) = window.unwrap_or((ev.at_us, ev.at_us + 1));
                        pass.spread(start, end, o.bytes, o.node, o.src);
                    }
                    ObjectPhase::Spilled | ObjectPhase::Restored | ObjectPhase::Fallback => {
                        let a = if (o.node as usize) < nodes {
                            &mut pass.per_node[i * nodes + o.node as usize]
                        } else {
                            &mut pass.slop[i]
                        };
                        a.spill_ops += 1;
                    }
                    _ => {}
                },
                // Task lifecycle, deps, fetch-waits, failures, and
                // incident edges don't move bytes through the devices
                // this profile attributes; enumerated so a new variant is
                // a compile error.
                EventKind::Task(_)
                | EventKind::Dep(_)
                | EventKind::FetchWait(_)
                | EventKind::Failure(_)
                | EventKind::Incident(_)
                | EventKind::Job(_) => {}
            }
        }
        pass
    }

    /// Adds a transfer's bytes to the slices overlapping `[start, end)`
    /// µs, pro rata: once to the cluster track, once to each (distinct)
    /// endpoint's per-node cell.
    fn spread(&mut self, start: u64, end: u64, bytes: u64, dst: u32, src: Option<u32>) {
        let dur = (end - start).max(1);
        let last = end.min(self.end_us);
        let idx = |at_us: u64| {
            (((at_us.min(self.end_us - 1)) / self.slice_us) as usize).min(self.slices - 1)
        };
        let (i0, i1) = (idx(start), idx(last.saturating_sub(1)));
        for i in i0..=i1 {
            let s = (i as u64 * self.slice_us).max(start);
            let e = ((i as u64 + 1) * self.slice_us).min(last);
            let share = (bytes as u128 * (e.saturating_sub(s)) as u128 / dur as u128) as u64;
            self.net_cluster[i] += share;
            if (dst as usize) < self.nodes {
                self.per_node[i * self.nodes + dst as usize].net_bytes += share;
            }
            if let Some(s_node) = src {
                if s_node != dst && (s_node as usize) < self.nodes {
                    self.per_node[i * self.nodes + s_node as usize].net_bytes += share;
                }
            }
        }
    }

    /// The whole-cluster readout.
    fn cluster(&self, caps: &DeviceCaps) -> BoundProfile {
        self.readout(caps, None)
    }

    /// One node's readout, classified against that node's capacities.
    fn node(&self, caps: &DeviceCaps, n: u32) -> BoundProfile {
        self.readout(caps, Some(n))
    }

    fn readout(&self, caps: &DeviceCaps, sel: Option<u32>) -> BoundProfile {
        if self.end_us == 0 {
            return BoundProfile::default();
        }
        let selected = |node: u32| sel.is_none_or(|s| s == node);
        let nodes = self.nodes;

        // Capacities of the selected nodes per slice.
        let slice_secs = self.slice_us as f64 / 1e6;
        let sel_caps = || {
            caps.per_node
                .iter()
                .enumerate()
                .filter(|(n, _)| selected(*n as u32))
        };
        let disk_cap = sel_caps().map(|(_, c)| c.disk_seq_bw).sum::<f64>() * slice_secs;
        let net_cap = sel_caps().map(|(_, c)| c.nic_bw).sum::<f64>() * slice_secs;
        let store_cap = (sel_caps().map(|(_, c)| c.store_bytes).sum::<u64>() as f64).max(1.0);

        let mut profile = BoundProfile {
            intervals: Vec::with_capacity(self.slices),
            end_us: self.end_us,
        };
        let mut last_cpu = 0.0;
        let mut store_level: Vec<u64> = vec![0; nodes];
        for i in 0..self.slices {
            // Fold the selected nodes' cells. All fields are exact
            // integer sums, so this reproduces the old event-order
            // accumulation regardless of summation order.
            let mut a = Acc::default();
            for n in 0..nodes {
                if !selected(n as u32) {
                    continue;
                }
                let cell = &self.per_node[i * nodes + n];
                a.cpu_busy += cell.cpu_busy;
                a.cpu_total += cell.cpu_total;
                a.samples += cell.samples;
                a.disk_bytes += cell.disk_bytes;
                a.spill_ops += cell.spill_ops;
                a.net_bytes += cell.net_bytes;
            }
            if sel.is_none() {
                // Cluster view: each transfer counts once (not once per
                // endpoint), and out-of-card events count here — no
                // single-node view can claim them.
                a.net_bytes = self.net_cluster[i];
                let s = &self.slop[i];
                a.cpu_busy += s.cpu_busy;
                a.cpu_total += s.cpu_total;
                a.samples += s.samples;
                a.disk_bytes += s.disk_bytes;
                a.spill_ops += s.spill_ops;
            }
            // Samples arrive every resource_sample_us; slices without
            // one carry the previous slice's levels (they describe
            // occupancy, not flow).
            let cpu_util = if a.samples > 0 {
                a.cpu_busy / a.cpu_total.max(1.0)
            } else {
                last_cpu
            };
            last_cpu = cpu_util;
            // Store occupancy: sum each selected node's latest known
            // level.
            for (n, level) in store_level.iter_mut().enumerate() {
                if let Some(peak) = self.store_peak[i * nodes + n] {
                    *level = peak;
                }
            }
            let store_used: u64 = store_level
                .iter()
                .enumerate()
                .filter(|(n, _)| selected(*n as u32))
                .map(|(_, l)| *l)
                .sum();
            let store_frac = (store_used as f64 / store_cap).min(1.0);
            let disk_util = a.disk_bytes as f64 / disk_cap.max(1.0);
            let net_util = a.net_bytes as f64 / net_cap.max(1.0);

            let bound = if store_frac >= STORE_FULL_FRAC && a.spill_ops > 0 {
                Bound::AllocStall
            } else {
                // Highest utilisation wins if anything is near capacity;
                // ties break toward disk (the paper's usual suspect).
                let scored = [
                    (Bound::Disk, disk_util),
                    (Bound::Net, net_util),
                    (Bound::Cpu, cpu_util),
                ];
                scored
                    .into_iter()
                    .filter(|(_, u)| *u >= BOUND_THRESHOLD)
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .map(|(b, _)| b)
                    .unwrap_or(Bound::Idle)
            };

            profile.intervals.push(Interval {
                start_us: i as u64 * self.slice_us,
                end_us: ((i as u64 + 1) * self.slice_us).min(self.end_us),
                bound,
                cpu_util,
                disk_util,
                net_util,
                store_frac,
            });
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_sim::NodeCaps;
    use exo_trace::{IoDir, IoEvent, ObjectEvent, ResourceSample};

    fn node_caps() -> NodeCaps {
        NodeCaps {
            cpu_slots: 8,
            disk_seq_bw: 1e9,
            disk_random_iops: 1500.0,
            disk_devices: 6,
            nic_bw: 1e9,
            store_bytes: 1_000_000,
        }
    }

    fn caps() -> DeviceCaps {
        DeviceCaps::uniform(node_caps(), 2)
    }

    fn io_on(node: u32, at_us: u64, bytes: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Io(IoEvent {
                node,
                dir: IoDir::Write,
                bytes,
            }),
        }
    }

    fn io(at_us: u64, bytes: u64) -> Event {
        io_on(0, at_us, bytes)
    }

    fn sample_on(node: u32, at_us: u64, busy: u32, store_used: u64) -> Event {
        Event {
            at_us,
            kind: EventKind::Resource(ResourceSample {
                node,
                cpu_slots_busy: busy,
                cpu_slots_total: 8,
                store_used,
                disk_queue_depth: 0,
                nic_bytes_in_flight: 0,
            }),
        }
    }

    fn sample(at_us: u64, busy: u32, store_used: u64) -> Event {
        sample_on(0, at_us, busy, store_used)
    }

    #[test]
    fn saturated_disk_classifies_disk_bound() {
        // 1 ms run, 2 nodes × 1 GB/s: capacity is 2 MB over the run.
        // Write 4 MB spread across it: every slice well over threshold.
        // Events land every 10 µs against ~8 µs slices, so a few
        // slices stay empty (idle) — the profile is still disk-dominated.
        let events: Vec<Event> = (0..100).map(|i| io(i * 10 + 1, 40_000)).collect();
        let p = attribute(&events, &caps());
        assert!(p.fraction(Bound::Disk) > 0.7, "{}", p.one_line());
        assert_eq!(p.dominant(), Bound::Disk);
    }

    #[test]
    fn full_store_with_spilling_is_alloc_stall() {
        // Both nodes' stores are sampled near-full: cluster occupancy is
        // the *sum* of per-node levels, not an extrapolation of one node.
        let mut events = vec![sample_on(0, 10, 1, 999_000), sample_on(1, 10, 1, 999_000)];
        events.push(Event {
            at_us: 12,
            kind: EventKind::Object(ObjectEvent {
                object: 1,
                phase: ObjectPhase::Spilled,
                node: 0,
                src: None,
                bytes: 1000,
            }),
        });
        events.push(sample(1000, 1, 999_000));
        let p = attribute(&events, &caps());
        assert!(p.fraction(Bound::AllocStall) > 0.0, "{}", p.one_line());
        // The slice containing the sample+spill (t=10..12) must stall.
        let stalled = p
            .intervals
            .iter()
            .find(|i| i.start_us <= 12 && 12 < i.end_us)
            .expect("slice exists");
        assert_eq!(stalled.bound, Bound::AllocStall);
    }

    #[test]
    fn one_full_store_does_not_stall_the_cluster_view() {
        // Node 0 is wedged full and spilling; node 1's store is empty.
        // Cluster occupancy is 50% — below the stall threshold — so the
        // old "peak node × nodes" extrapolation would have been wrong.
        let events = vec![
            sample_on(0, 10, 1, 999_000),
            sample_on(1, 10, 1, 0),
            Event {
                at_us: 12,
                kind: EventKind::Object(ObjectEvent {
                    object: 1,
                    phase: ObjectPhase::Spilled,
                    node: 0,
                    src: None,
                    bytes: 1000,
                }),
            },
            sample(1000, 1, 999_000),
        ];
        let p = attribute(&events, &caps());
        assert!(
            (p.fraction(Bound::AllocStall) - 0.0).abs() < 1e-9,
            "{}",
            p.one_line()
        );
        // The per-node view still sees node 0 stalled.
        let per_node = attribute_per_node(&events, &caps());
        assert_eq!(per_node.len(), 2);
        assert!(
            per_node[0].fraction(Bound::AllocStall) > 0.0,
            "{}",
            per_node[0].one_line()
        );
        assert!(
            (per_node[1].fraction(Bound::AllocStall) - 0.0).abs() < 1e-9,
            "{}",
            per_node[1].one_line()
        );
    }

    #[test]
    fn per_node_profiles_diverge_on_heterogeneous_caps() {
        // Node 0 is a slow disk (100 MB/s), node 1 a fast one (10 GB/s).
        // The same write stream on each node saturates only the slow one.
        let slow = NodeCaps {
            disk_seq_bw: 1e8,
            ..node_caps()
        };
        let fast = NodeCaps {
            disk_seq_bw: 1e10,
            ..node_caps()
        };
        let caps = DeviceCaps {
            per_node: vec![slow, fast],
        };
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(io_on(0, i * 10 + 1, 10_000));
            events.push(io_on(1, i * 10 + 1, 10_000));
        }
        let per_node = attribute_per_node(&events, &caps);
        assert_eq!(per_node[0].dominant(), Bound::Disk, "slow node saturates");
        assert_eq!(per_node[1].dominant(), Bound::Idle, "fast node coasts");
        // Each node's fractions tile the shared makespan.
        for p in &per_node {
            let sum: f64 = Bound::ALL.iter().map(|b| p.fraction(*b)).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert_eq!(p.end_us, 991);
        }
    }

    #[test]
    fn idle_run_is_idle_and_fractions_sum_to_one() {
        let events = vec![sample(10, 0, 0), sample(1000, 0, 0)];
        let p = attribute(&events, &caps());
        assert_eq!(p.dominant(), Bound::Idle);
        let sum: f64 = Bound::ALL.iter().map(|b| p.fraction(*b)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_cpu_classifies_cpu_bound() {
        let events: Vec<Event> = (1..=20).map(|i| sample(i * 50, 8, 0)).collect();
        let p = attribute(&events, &caps());
        assert_eq!(p.dominant(), Bound::Cpu, "{}", p.one_line());
        assert!(p.fraction(Bound::Cpu) > 0.5);
    }

    #[test]
    fn empty_stream_has_no_intervals() {
        let p = attribute(&[], &caps());
        assert!(p.intervals.is_empty());
        assert_eq!(p.one_line(), "no data");
    }

    /// The pre-memoization implementation: one full stream scan per
    /// selection. Kept verbatim as the oracle for the single-pass
    /// rewrite — every view must match it bit for bit.
    fn naive_attribute_selected(
        events: &[Event],
        caps: &DeviceCaps,
        end_us: u64,
        sel: Option<u32>,
    ) -> BoundProfile {
        if end_us == 0 {
            return BoundProfile::default();
        }
        let slice_us = (end_us / TARGET_SLICES).max(1);
        let slices = end_us.div_ceil(slice_us) as usize;
        let selected = |node: u32| sel.is_none_or(|s| s == node);

        let mut acc = vec![Acc::default(); slices];
        let nodes = caps.nodes();
        let mut store_peak: Vec<Option<u64>> = vec![None; slices * nodes];
        let idx = |at_us: u64| (((at_us.min(end_us - 1)) / slice_us) as usize).min(slices - 1);
        let mut tx_free: Vec<u64> = vec![0; nodes];
        let spread = |acc: &mut Vec<Acc>, start: u64, end: u64, bytes: u64| {
            let dur = (end - start).max(1);
            let last = end.min(end_us);
            let (i0, i1) = (idx(start), idx(last.saturating_sub(1)));
            for (i, slot) in acc.iter_mut().enumerate().take(i1 + 1).skip(i0) {
                let s = (i as u64 * slice_us).max(start);
                let e = ((i as u64 + 1) * slice_us).min(last);
                let share = (bytes as u128 * (e.saturating_sub(s)) as u128 / dur as u128) as u64;
                slot.net_bytes += share;
            }
        };
        for ev in events {
            let i = idx(ev.at_us);
            match &ev.kind {
                EventKind::Resource(r) if selected(r.node) => {
                    let a = &mut acc[i];
                    a.cpu_busy += r.cpu_slots_busy as f64;
                    a.cpu_total += r.cpu_slots_total.max(1) as f64;
                    a.samples += 1;
                    if (r.node as usize) < nodes {
                        let cell = &mut store_peak[i * nodes + r.node as usize];
                        *cell = Some(cell.unwrap_or(0).max(r.store_used));
                    }
                }
                EventKind::Io(io) if selected(io.node) => acc[i].disk_bytes += io.bytes,
                EventKind::Object(o) => match o.phase {
                    ObjectPhase::Transferred => {
                        let window = o.src.filter(|s| (*s as usize) < nodes).map(|s| {
                            let bw = caps.per_node[s as usize].nic_bw.max(1.0);
                            let start = ev.at_us.max(tx_free[s as usize]);
                            let end = start + ((o.bytes as f64 * 1e6 / bw).ceil() as u64).max(1);
                            tx_free[s as usize] = end;
                            (start, end)
                        });
                        if selected(o.node) || o.src.is_some_and(selected) {
                            let (start, end) = window.unwrap_or((ev.at_us, ev.at_us + 1));
                            spread(&mut acc, start, end, o.bytes);
                        }
                    }
                    ObjectPhase::Spilled | ObjectPhase::Restored | ObjectPhase::Fallback
                        if selected(o.node) =>
                    {
                        acc[i].spill_ops += 1;
                    }
                    _ => {}
                },
                _ => {}
            }
        }

        let slice_secs = slice_us as f64 / 1e6;
        let sel_caps = || {
            caps.per_node
                .iter()
                .enumerate()
                .filter(|(n, _)| selected(*n as u32))
        };
        let disk_cap = sel_caps().map(|(_, c)| c.disk_seq_bw).sum::<f64>() * slice_secs;
        let net_cap = sel_caps().map(|(_, c)| c.nic_bw).sum::<f64>() * slice_secs;
        let store_cap = (sel_caps().map(|(_, c)| c.store_bytes).sum::<u64>() as f64).max(1.0);

        let mut profile = BoundProfile {
            intervals: Vec::with_capacity(slices),
            end_us,
        };
        let mut last_cpu = 0.0;
        let mut store_level: Vec<u64> = vec![0; nodes];
        for (i, a) in acc.iter().enumerate() {
            let cpu_util = if a.samples > 0 {
                a.cpu_busy / a.cpu_total.max(1.0)
            } else {
                last_cpu
            };
            last_cpu = cpu_util;
            for (n, level) in store_level.iter_mut().enumerate() {
                if let Some(peak) = store_peak[i * nodes + n] {
                    *level = peak;
                }
            }
            let store_used: u64 = store_level
                .iter()
                .enumerate()
                .filter(|(n, _)| selected(*n as u32))
                .map(|(_, l)| *l)
                .sum();
            let store_frac = (store_used as f64 / store_cap).min(1.0);
            let disk_util = a.disk_bytes as f64 / disk_cap.max(1.0);
            let net_util = a.net_bytes as f64 / net_cap.max(1.0);
            let bound = if store_frac >= STORE_FULL_FRAC && a.spill_ops > 0 {
                Bound::AllocStall
            } else {
                let scored = [
                    (Bound::Disk, disk_util),
                    (Bound::Net, net_util),
                    (Bound::Cpu, cpu_util),
                ];
                scored
                    .into_iter()
                    .filter(|(_, u)| *u >= BOUND_THRESHOLD)
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .map(|(b, _)| b)
                    .unwrap_or(Bound::Idle)
            };
            profile.intervals.push(Interval {
                start_us: i as u64 * slice_us,
                end_us: ((i as u64 + 1) * slice_us).min(end_us),
                bound,
                cpu_util,
                disk_util,
                net_util,
                store_frac,
            });
        }
        profile
    }

    fn profiles_identical(a: &BoundProfile, b: &BoundProfile) -> bool {
        a.end_us == b.end_us
            && a.intervals.len() == b.intervals.len()
            && a.intervals.iter().zip(&b.intervals).all(|(x, y)| {
                x.start_us == y.start_us
                    && x.end_us == y.end_us
                    && x.bound == y.bound
                    && x.cpu_util.to_bits() == y.cpu_util.to_bits()
                    && x.disk_util.to_bits() == y.disk_util.to_bits()
                    && x.net_util.to_bits() == y.net_util.to_bits()
                    && x.store_frac.to_bits() == y.store_frac.to_bits()
            })
    }

    /// Deterministic generator for a large synthetic trace mixing every
    /// attributable event shape: bursty cross-node transfers (shared
    /// tx queues), disk traffic, resource samples, spills, and a few
    /// deliberately out-of-card node ids.
    fn synthetic_trace(n_events: u64, nodes: u32) -> Vec<Event> {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        let mut events = Vec::new();
        for k in 0..n_events {
            // Bursty timestamps: many events share an instant, like a
            // stage submitting all its transfers at once.
            let at_us = 1 + (k / 7) * (1 + next() % 900);
            let node = (next() % (nodes as u64 + 2)) as u32; // sometimes out of card
            let bytes = next() % 200_000_000;
            let ev = match next() % 5 {
                0 => EventKind::Io(IoEvent {
                    node,
                    dir: if bytes % 2 == 0 {
                        IoDir::Read
                    } else {
                        IoDir::Write
                    },
                    bytes,
                }),
                1 => EventKind::Resource(ResourceSample {
                    node,
                    cpu_slots_busy: (next() % 9) as u32,
                    cpu_slots_total: 8,
                    store_used: bytes,
                    disk_queue_depth: 0,
                    nic_bytes_in_flight: 0,
                }),
                2 | 3 => EventKind::Object(ObjectEvent {
                    object: k,
                    phase: ObjectPhase::Transferred,
                    node,
                    src: if next() % 4 == 0 {
                        None
                    } else {
                        Some((next() % (nodes as u64 + 1)) as u32)
                    },
                    bytes,
                }),
                _ => EventKind::Object(ObjectEvent {
                    object: k,
                    phase: match next() % 3 {
                        0 => ObjectPhase::Spilled,
                        1 => ObjectPhase::Restored,
                        _ => ObjectPhase::Fallback,
                    },
                    node,
                    src: None,
                    bytes,
                }),
            };
            events.push(Event { at_us, kind: ev });
        }
        events.sort_by_key(|e| e.at_us);
        events
    }

    #[test]
    fn single_pass_matches_per_selection_scans_bit_for_bit() {
        let nodes = 7u32;
        let events = synthetic_trace(50_000, nodes);
        let caps = {
            let per_node = (0..nodes as usize)
                .map(|i| NodeCaps {
                    cpu_slots: 4 + 4 * (i % 3),
                    disk_seq_bw: 100e6 * (1 + i % 5) as f64,
                    disk_random_iops: 1500.0,
                    disk_devices: 1 + i % 4,
                    nic_bw: 250e6 * (1 + i % 3) as f64,
                    store_bytes: 1 << (27 + i % 3),
                })
                .collect();
            DeviceCaps { per_node }
        };
        let end_us = events.iter().map(|e| e.at_us).max().unwrap_or(0);
        let (cluster, per_node) = attribute_all(&events, &caps);
        assert!(
            profiles_identical(
                &cluster,
                &naive_attribute_selected(&events, &caps, end_us, None)
            ),
            "cluster profile diverged from the per-selection oracle"
        );
        assert_eq!(per_node.len(), nodes as usize);
        for (n, p) in per_node.iter().enumerate() {
            assert!(
                profiles_identical(
                    p,
                    &naive_attribute_selected(&events, &caps, end_us, Some(n as u32))
                ),
                "node {n} profile diverged from the per-selection oracle"
            );
        }
        // And the public single-view entry points agree with the
        // memoized pair.
        assert!(profiles_identical(&cluster, &attribute(&events, &caps)));
    }
}
