//! Property tests for exo-prof over randomly generated event streams:
//! whatever the stream looks like, the derived aggregates must stay
//! internally consistent.

use exo_prof::{attribute, attribute_per_node, critical_path, Bound};
use exo_sim::{DeviceCaps, NodeCaps};
use exo_trace::{Event, EventKind, IoDir, IoEvent, ObjectEvent, ObjectPhase, ResourceSample};
use proptest::prelude::*;

fn caps(nodes: usize) -> DeviceCaps {
    DeviceCaps::uniform(
        NodeCaps {
            cpu_slots: 8,
            disk_seq_bw: 500e6,
            disk_random_iops: 1500.0,
            disk_devices: 4,
            nic_bw: 1e9,
            store_bytes: 1 << 26,
        },
        nodes,
    )
}

/// A deliberately lopsided capacity card: node capacities differ so the
/// per-node property is exercised against heterogeneity, not just the
/// uniform case.
fn mixed_caps(nodes: usize) -> DeviceCaps {
    let per_node = (0..nodes)
        .map(|i| NodeCaps {
            cpu_slots: 4 + 4 * (i % 3),
            disk_seq_bw: 100e6 * (1 + i as u64 % 5) as f64,
            disk_random_iops: 1500.0,
            disk_devices: 1 + i % 4,
            nic_bw: 1e9,
            store_bytes: 1 << (24 + i % 4),
        })
        .collect();
    DeviceCaps { per_node }
}

/// One random event: (selector, at_us, node, bytes-ish, busy-ish).
type RawEvent = (u8, u64, u32, u64, u32);

fn build(raw: &[RawEvent]) -> Vec<Event> {
    let mut events: Vec<Event> = raw
        .iter()
        .map(|&(sel, at_us, node, bytes, busy)| {
            let kind = match sel % 4 {
                0 => EventKind::Io(IoEvent {
                    node,
                    dir: if bytes % 2 == 0 {
                        IoDir::Read
                    } else {
                        IoDir::Write
                    },
                    bytes,
                }),
                1 => EventKind::Resource(ResourceSample {
                    node,
                    cpu_slots_busy: busy % 9,
                    cpu_slots_total: 8,
                    store_used: bytes,
                    disk_queue_depth: busy,
                    nic_bytes_in_flight: bytes,
                }),
                2 => EventKind::Object(ObjectEvent {
                    object: bytes % 64,
                    phase: if busy % 2 == 0 {
                        ObjectPhase::Transferred
                    } else {
                        ObjectPhase::Spilled
                    },
                    node,
                    src: None,
                    bytes,
                }),
                _ => EventKind::Object(ObjectEvent {
                    object: bytes % 64,
                    phase: ObjectPhase::Created,
                    node,
                    src: None,
                    bytes,
                }),
            };
            Event { at_us, kind }
        })
        .collect();
    events.sort_by_key(|e| e.at_us);
    events
}

proptest! {
    /// Interval fractions are a partition of the run: each lies in
    /// [0, 1] and together they never exceed 1 (they sum to exactly 1
    /// for non-empty runs, 0 for empty ones).
    #[test]
    fn attribution_fractions_sum_to_at_most_one(
        raw in proptest::collection::vec(
            (any::<u8>(), 1u64..2_000_000, 0u32..4, 0u64..100_000_000, any::<u32>()),
            0..200,
        ),
        nodes in 1usize..8,
    ) {
        let events = build(&raw);
        let p = attribute(&events, &caps(nodes));
        let mut sum = 0.0;
        for b in Bound::ALL {
            let f = p.fraction(b);
            prop_assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
            sum += f;
        }
        prop_assert!(sum <= 1.0 + 1e-9, "fractions sum to {sum}");
        if !p.intervals.is_empty() {
            prop_assert!((sum - 1.0).abs() < 1e-9, "non-empty run must be fully classified, got {sum}");
            // Intervals tile [0, end_us] in order.
            prop_assert!(p.intervals.first().unwrap().start_us == 0);
            prop_assert!(p.intervals.last().unwrap().end_us == p.end_us);
            for w in p.intervals.windows(2) {
                prop_assert!(w[0].end_us == w[1].start_us, "intervals must be contiguous");
            }
        }
    }

    /// Per-node profiles share the cluster-wide slice grid: every node's
    /// intervals tile the same [0, end_us] makespan and its fractions
    /// sum to 1 — even when node capacities differ wildly.
    #[test]
    fn per_node_fractions_tile_the_makespan(
        raw in proptest::collection::vec(
            (any::<u8>(), 1u64..2_000_000, 0u32..4, 0u64..100_000_000, any::<u32>()),
            0..200,
        ),
        nodes in 1usize..8,
    ) {
        let events = build(&raw);
        let cluster = attribute(&events, &mixed_caps(nodes));
        let per_node = attribute_per_node(&events, &mixed_caps(nodes));
        prop_assert_eq!(per_node.len(), nodes);
        for p in &per_node {
            prop_assert_eq!(p.end_us, cluster.end_us, "per-node makespan must match cluster");
            let mut sum = 0.0;
            for b in Bound::ALL {
                let f = p.fraction(b);
                prop_assert!((0.0..=1.0).contains(&f), "fraction out of range: {}", f);
                sum += f;
            }
            if !p.intervals.is_empty() {
                prop_assert!((sum - 1.0).abs() < 1e-9, "per-node fractions must sum to 1, got {}", sum);
                prop_assert!(p.intervals.first().unwrap().start_us == 0);
                prop_assert!(p.intervals.last().unwrap().end_us == p.end_us);
                for w in p.intervals.windows(2) {
                    prop_assert!(w[0].end_us == w[1].start_us, "intervals must be contiguous");
                }
            }
        }
    }

    /// The critical path never claims more than the makespan, and a
    /// stream with no finished task yields an empty path.
    #[test]
    fn critical_path_coverage_is_bounded(
        raw in proptest::collection::vec(
            (any::<u8>(), 1u64..1_000_000, 0u32..4, 0u64..1_000_000, any::<u32>()),
            0..100,
        ),
    ) {
        let events = build(&raw);
        let p = critical_path(&events);
        // build() emits no Task events, so nothing can be on the path.
        prop_assert!(p.tasks.is_empty());
        prop_assert!(p.coverage() <= 1.0 + 1e-9);
    }
}
