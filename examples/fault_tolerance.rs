//! Fault tolerance demo: kill a node mid-sort, watch lineage
//! reconstruction recover, and verify the output record-for-record
//! (§4.2.3 / §5.1.5). Also demonstrates the milder executor-process
//! failure, which loses no objects.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use exoshuffle::rt::{NodeId, RtConfig};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SimDuration, SimTime};
use exoshuffle::sort::{sort_job, validate_sorted, SortSpec};

fn main() {
    let spec = SortSpec {
        data_bytes: 20_000_000_000,
        num_maps: 64,
        num_reduces: 64,
        scale: 2000,
        seed: 99,
    };
    let cluster = || ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 8);

    // Clean run for reference.
    let (clean, _) = exoshuffle::rt::run(RtConfig::new(cluster()), |rt| {
        let outs = run_shuffle(
            rt,
            &sort_job(spec),
            ShuffleVariant::PushStar { map_parallelism: 2 },
        );
        rt.wait_all(&outs);
    });
    println!(
        "clean run:            {:.1} s",
        clean.end_time.as_secs_f64()
    );

    // Node failure + restart mid-run.
    let (failed, outputs) = exoshuffle::rt::run(RtConfig::new(cluster()), |rt| {
        rt.kill_node(
            NodeId(3),
            SimTime(2_000_000),
            Some(SimDuration::from_secs(30)),
        );
        let outs = run_shuffle(
            rt,
            &sort_job(spec),
            ShuffleVariant::PushStar { map_parallelism: 2 },
        );
        rt.get(&outs).expect("recovered output")
    });
    validate_sorted(&spec, &outputs).expect("output correct despite node failure");
    println!(
        "node kill @2s:        {:.1} s  (+{:.1} s recovery, {} tasks re-executed, output validated)",
        failed.end_time.as_secs_f64(),
        failed.end_time.as_secs_f64() - clean.end_time.as_secs_f64(),
        failed.metrics.tasks_reexecuted
    );

    // Executor failure: store survives, so recovery is cheaper.
    let (exec_failed, outputs) = exoshuffle::rt::run(RtConfig::new(cluster()), |rt| {
        rt.kill_executors(NodeId(3), SimTime(2_000_000));
        let outs = run_shuffle(
            rt,
            &sort_job(spec),
            ShuffleVariant::PushStar { map_parallelism: 2 },
        );
        rt.get(&outs).expect("recovered output")
    });
    validate_sorted(&spec, &outputs).expect("output correct despite executor failure");
    println!(
        "executor kill @2s:    {:.1} s  (objects survive in the NodeManager store)",
        exec_failed.end_time.as_secs_f64()
    );
}
