//! Straggler mitigation demo: one node runs 10× slower; the speculative
//! shuffle library detects the laggards with `wait` timeouts and clones
//! them onto healthy nodes (§4.3.2).
//!
//! ```sh
//! cargo run --release --example speculation
//! ```

use exoshuffle::rt::{CpuCost, RtConfig};
use exoshuffle::shuffle::{
    key_sum_job, key_sum_total, simple_shuffle, speculative_simple_shuffle, SpeculationConfig,
};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SimDuration};

fn main() {
    let cluster = || {
        RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 4)).with_slow_node(1, 10.0)
        // node 1 is a 10x straggler
    };
    let job = || {
        key_sum_job(16, 8, 200).with_cpu(
            CpuCost::fixed(SimDuration::from_secs(10)),
            CpuCost::fixed(SimDuration::from_millis(1)),
            CpuCost::fixed(SimDuration::from_millis(10)),
        )
    };

    let (plain, total_plain) = exoshuffle::rt::run(cluster(), |rt| {
        let outs = simple_shuffle(rt, &job());
        key_sum_total(&rt.get(&outs).unwrap())
    });

    let cfg = SpeculationConfig {
        straggler_timeout: SimDuration::from_secs(15),
        max_clone_fraction: 0.5,
    };
    let (spec, (total_spec, report)) = exoshuffle::rt::run(cluster(), |rt| {
        let (outs, report) = speculative_simple_shuffle(rt, &job(), cfg);
        (key_sum_total(&rt.get(&outs).unwrap()), report)
    });

    assert_eq!(total_plain, total_spec, "same answer either way");
    println!("cluster: 4 nodes, node 1 computes 10x slower\n");
    println!(
        "plain simple shuffle:      {:.1} s",
        plain.end_time.as_secs_f64()
    );
    println!(
        "with speculation:          {:.1} s  ({} laggards cloned, {} clone wins)",
        spec.end_time.as_secs_f64(),
        report.cloned,
        report.clone_wins
    );
    println!(
        "speedup:                   {:.2}x",
        plain.end_time.as_secs_f64() / spec.end_time.as_secs_f64()
    );
}
