//! Online aggregation: watch partial results converge while the shuffle
//! is still running (§3.2.1 / Fig 5).
//!
//! ```sh
//! cargo run --release --example online_aggregation
//! ```

use exoshuffle::agg::{regular_aggregation, streaming_aggregation, AggConfig, PageviewSpec};
use exoshuffle::rt::RtConfig;
use exoshuffle::sim::{ClusterSpec, NodeSpec};

fn main() {
    let cfg = AggConfig {
        spec: PageviewSpec {
            data_bytes: 50_000_000_000, // 50 GB logical pageview log
            num_maps: 100,
            num_reduces: 20,
            entries_per_map: 5000,
            pages: 200_000,
            seed: 1,
        },
        rounds: 10,
    };
    let rt_cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::r6i_2xlarge(), 10));

    let (_report, ()) = exoshuffle::rt::run(rt_cfg, |rt| {
        let (t_batch, truth) = regular_aggregation(rt, &cfg);
        println!(
            "batch aggregation finished at {:.1} s (this is the reference)\n",
            t_batch.as_secs_f64()
        );
        println!("streaming aggregation — partial results as they arrive:");
        let (samples, t_stream) = streaming_aggregation(rt, &cfg, &truth);
        for s in &samples {
            let bar = "#".repeat(((1.0 - s.kl.min(1.0)) * 40.0) as usize);
            println!(
                "  round {:>2} @ {:>6.1}s  KL={:<8.5} {}",
                s.round,
                s.at.as_secs_f64(),
                s.kl,
                bar
            );
        }
        println!(
            "\nstreaming total: {:.1} s ({:.2}x the batch time, but first",
            t_stream.as_secs_f64(),
            t_stream.as_secs_f64() / t_batch.as_secs_f64()
        );
        println!(
            "usable result after {:.1} s — {:.0}x earlier than batch completion)",
            samples[0].at.as_secs_f64(),
            t_batch.as_secs_f64() / samples[0].at.as_secs_f64()
        );
    });
}
