//! Quickstart: word-count-style shuffle on a simulated 4-node cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the three-step Exoshuffle workflow: describe the workload as a
//! `ShuffleJob` (map / combine / reduce), pick a shuffle variant at run
//! time, and consume the reduce outputs as distributed futures.

use std::sync::Arc;

use exoshuffle::rt::{Payload, RtConfig};
use exoshuffle::shuffle::{run_shuffle, ShuffleJob, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SplitMix64};

/// Toy corpus: each map task holds one "document" of numbers standing in
/// for words (word id = number). We count occurrences of each word.
fn word_count_job(num_docs: usize, words_per_doc: usize, reducers: usize) -> ShuffleJob {
    let map = Arc::new(move |doc: usize, r_total: usize, _rng: &mut SplitMix64| {
        // Deterministic "document": word ids drawn from a small zipfy set.
        let mut rng = SplitMix64::new(doc as u64 + 1);
        let mut blocks: Vec<Vec<u8>> = vec![Vec::new(); r_total];
        for _ in 0..words_per_doc {
            let word = (rng.next_below(100) * rng.next_below(3).max(1)) as u32;
            blocks[(word as usize) % r_total].extend_from_slice(&word.to_le_bytes());
        }
        blocks.into_iter().map(Payload::inline).collect()
    });
    let combine = Arc::new(|blocks: &[Payload]| {
        let mut out = Vec::new();
        for b in blocks {
            out.extend_from_slice(&b.data);
        }
        Payload::inline(out)
    });
    let reduce = Arc::new(|_r: usize, blocks: &[Payload]| {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for b in blocks {
            for w in b.data.chunks_exact(4) {
                *counts
                    .entry(u32::from_le_bytes(w.try_into().expect("u32")))
                    .or_default() += 1;
            }
        }
        let mut out = Vec::new();
        for (w, c) in counts {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        Payload::inline(out)
    });
    ShuffleJob::new(num_docs, reducers, map, combine, reduce)
}

fn main() {
    // A simulated 4-node SSD cluster. Time is virtual: the run below
    // finishes in milliseconds of wall time while reporting realistic
    // cluster timings.
    let cluster = ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 4);
    let cfg = RtConfig::new(cluster);

    let (report, top) = exoshuffle::rt::run(cfg, |rt| {
        let job = word_count_job(32, 10_000, 8);
        // Swap the variant freely — that is the point of the paper.
        let outs = run_shuffle(rt, &job, ShuffleVariant::PushStar { map_parallelism: 2 });
        let counts = rt.get(&outs).expect("word counts");
        // Find the most frequent word across all partitions.
        let mut best = (0u32, 0u32);
        for p in &counts {
            for e in p.data.chunks_exact(8) {
                let w = u32::from_le_bytes(e[..4].try_into().expect("w"));
                let c = u32::from_le_bytes(e[4..].try_into().expect("c"));
                if c > best.1 {
                    best = (w, c);
                }
            }
        }
        best
    });

    println!("counted 320k words across 32 documents on 4 simulated nodes");
    println!(
        "most frequent word: id {} with {} occurrences",
        top.0, top.1
    );
    println!("virtual job time: {}", report.end_time);
    println!(
        "cluster I/O: {} network bytes, {} tasks",
        report.metrics.net_bytes, report.metrics.tasks_completed
    );
}
