//! TeraSort: a validated distributed sort on a simulated 10-node HDD
//! cluster, comparing all four shuffle variants at run time.
//!
//! ```sh
//! cargo run --release --example terasort
//! ```

use exoshuffle::rt::RtConfig;
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec};
use exoshuffle::sort::{sort_job, validate_sorted, SortSpec};

fn main() {
    // 10 GB logical sort, carried by ~10 MB of real records (scale 1000):
    // correctness is checked on the real bytes, performance modelled at
    // 10 GB.
    let spec = SortSpec {
        data_bytes: 10_000_000_000,
        num_maps: 100,
        num_reduces: 100,
        scale: 1000,
        seed: 42,
    };
    let cluster = ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 10);
    println!(
        "sorting {} GB (logical) on 10 HDD nodes; theoretical bound {:.1} s\n",
        spec.data_bytes / 1_000_000_000,
        cluster.theoretical_sort_time(spec.data_bytes).as_secs_f64()
    );

    for variant in [
        ShuffleVariant::Simple,
        ShuffleVariant::Merge { factor: 8 },
        ShuffleVariant::Push { factor: 8 },
        ShuffleVariant::PushStar { map_parallelism: 2 },
    ] {
        let cfg = RtConfig::new(cluster.clone());
        let (report, outputs) = exoshuffle::rt::run(cfg, |rt| {
            let job = sort_job(spec);
            let outs = run_shuffle(rt, &job, variant);
            rt.get(&outs).expect("sorted output")
        });
        let check = validate_sorted(&spec, &outputs).expect("output must be globally sorted");
        println!(
            "{variant:?}: JCT {:.1} s  ({} records validated, spilled {:.2} GB, net {:.2} GB)",
            report.end_time.as_secs_f64(),
            check.records,
            report.metrics.store.spilled_bytes as f64 / 1e9,
            report.metrics.net_bytes as f64 / 1e9,
        );
    }
}
