//! ML training with per-epoch shuffle pipelined against GPU compute
//! (§3.2.2 / Listing 2 `model_training`).
//!
//! ```sh
//! cargo run --release --example ml_pipeline
//! ```
//!
//! Trains the same model three ways on a label-ordered dataset:
//! full shuffle, windowed (Petastorm-style) shuffle, and no shuffle —
//! showing both the accuracy effect of shuffle quality and the throughput
//! effect of pipelining.

use exoshuffle::ml::{exoshuffle_training, unshuffled_training, DatasetSpec, TrainConfig};
use exoshuffle::rt::RtConfig;
use exoshuffle::shuffle::{ShuffleVariant, ShuffleWindow};
use exoshuffle::sim::{ClusterSpec, NodeSpec};

fn main() {
    let base = TrainConfig {
        dataset: DatasetSpec::new(40_000, 16, 7),
        epochs: 5,
        batch_size: 128,
        lr: 0.5,
        variant: ShuffleVariant::Simple,
        window: ShuffleWindow::Full,
        gpu_ns_per_sample: 40_000.0,
    };
    let rt_cfg = || RtConfig::new(ClusterSpec::homogeneous(NodeSpec::g4dn_4xlarge(), 1));

    println!("training 5 epochs on a label-ordered synthetic dataset (40k samples)\n");

    let (_r, full) = exoshuffle::rt::run(rt_cfg(), |rt| exoshuffle_training(rt, &base));
    println!(
        "full shuffle:     final accuracy {:.3}, total {:.1} s (virtual)",
        full.accuracy.last().expect("epochs"),
        full.total_time.as_secs_f64()
    );

    let mut windowed = base;
    windowed.window = ShuffleWindow::Window { partitions: 2 };
    let (_r, win) = exoshuffle::rt::run(rt_cfg(), |rt| exoshuffle_training(rt, &windowed));
    println!(
        "windowed shuffle: final accuracy {:.3}, total {:.1} s (virtual)",
        win.accuracy.last().expect("epochs"),
        win.total_time.as_secs_f64()
    );

    let unshuffled = unshuffled_training(&base);
    println!("no shuffle:       final accuracy {unshuffled:.3}");

    println!("\nper-epoch accuracy (full vs windowed):");
    for e in 0..base.epochs {
        println!(
            "  epoch {}: {:.3} vs {:.3}",
            e + 1,
            full.accuracy[e],
            win.accuracy[e]
        );
    }
}
