//! Offline stand-in for the `bytes` crate, exposing the subset of its
//! API this workspace uses. `Bytes` is a cheaply-cloneable, sliceable
//! view over immutable shared storage (`Arc<[u8]>`); `BytesMut` is a
//! growable buffer that freezes into `Bytes` without copying.
//!
//! Vendored because the build environment has no network access to
//! crates.io; wired in via `[patch.crates-io]` in the workspace root.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies; the upstream crate's
    /// zero-copy optimisation is irrelevant at the sizes used here).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing storage.
    ///
    /// Panics if the range is out of bounds, like the upstream crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "…(+{} bytes)", self.len() - 64)?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freezes into [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts self into an immutable `Bytes`, transferring ownership.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Write-side extension trait (subset of the upstream `BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_offsets() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let tail = s.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_u64_le(9);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 14);
        let b = m.freeze();
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 7);
        assert_eq!(&b[12..], b"xy");
    }

    #[test]
    fn eq_and_ord_follow_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abd");
        assert!(a < b);
        assert_eq!(a, Bytes::from(vec![b'a', b'b', b'c']));
    }
}
