//! Offline stand-in for `crossbeam`, exposing only the `channel` module
//! surface this workspace uses (`bounded`, `unbounded`, `Sender`,
//! `Receiver`). Backed by `std::sync::mpsc`, whose `Sender` has been
//! `Sync` since Rust 1.72, so the sharing semantics match.
//!
//! Vendored because the build environment has no network access to
//! crates.io; wired in via `[patch.crates-io]` in the workspace root.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Multi-producer sender; clones share one queue.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel. Errors
        /// only when all receivers have disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving side of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel of bounded capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// Error returned when all receivers are gone; carries the message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_preserves_order_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_one_shot_reply() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
