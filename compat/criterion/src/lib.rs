//! Offline stand-in for `criterion`, exposing the subset of its API this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: calibrate with one run, then
//! time enough iterations to fill `measurement_time`, and report the
//! mean wall-clock per iteration (plus throughput when configured).
//! No statistics, plotting, or baseline storage.
//!
//! Vendored because the build environment has no network access to
//! crates.io; wired in via `[patch.crates-io]` in the workspace root.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects settings and runs closures.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 50,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(
            id,
            None,
            self.warm_up,
            self.measurement,
            self.sample_size,
            f,
        );
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &full,
            self.throughput.clone(),
            self.criterion.warm_up,
            self.criterion.measurement,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style APIs (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean wall-clock per iteration, filled in by `iter`.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run until the warm-up budget is spent.
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < self.warm_up {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        // Measurement: enough iterations to fill the budget, capped by
        // sample_size on the low end so trivial closures still average.
        let budget = self.measurement.as_secs_f64();
        let iters =
            ((budget / per_iter.max(1e-9)) as u64).clamp(self.sample_size as u64, 10_000_000);
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(t.elapsed().div_f64(iters as f64));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        sample_size,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) => {
                    let mbps = n as f64 / mean.as_secs_f64() / 1e6;
                    format!("  ({mbps:.1} MB/s)")
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / mean.as_secs_f64();
                    format!("  ({eps:.0} elem/s)")
                }
                None => String::new(),
            };
            println!("{id:<40} {:>12}{extra}", format_duration(mean));
        }
        None => println!("{id:<40} (no measurement: closure never called iter)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(10);
        c.bench_function("smoke", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
