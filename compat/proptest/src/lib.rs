//! Offline stand-in for `proptest`, exposing the subset of its API this
//! workspace uses: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `collection::vec`, `prop_map`, and `ProptestConfig::with_cases`.
//!
//! Inputs are generated from a deterministic SplitMix64 stream seeded
//! per (test name, case index), so failures reproduce exactly across
//! runs. There is no shrinking: a failing case panics with the values
//! visible in the assertion message.
//!
//! Vendored because the build environment has no network access to
//! crates.io; wired in via `[patch.crates-io]` in the workspace root.

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name and case index so each case draws an
        /// independent, reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking;
    /// `generate` draws a value directly from the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased generator arm of a [`Union`].
    pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Strategy choosing uniformly among alternatives, built by the
    /// [`prop_oneof!`](crate::prop_oneof) macro. The arms are erased to
    /// generator closures so heterogeneous strategy types can mix, as
    /// long as they produce the same value type.
    pub struct Union<T> {
        options: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<UnionArm<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(width)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64).wrapping_add(rng.below(width) as i64)) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`]: an exact size or range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks uniformly among the given strategies (upstream's weighted form
/// is not supported). Arms may be different strategy types as long as
/// they generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let __s = $arm;
                Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, __rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property test (panics on failure; this
/// shim has no shrinking, so it is equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u8, bool)>> {
        crate::collection::vec((any::<u8>(), any::<bool>()), 0..10)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in 1u64..1000, n in 0usize..5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((1..1000).contains(&y));
            prop_assert!(n < 5);
        }

        #[test]
        fn vec_sizes_respect_spec(v in crate::collection::vec(any::<u8>(), 4), mut w in arb_pairs()) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(w.len() < 10);
            w.clear();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_apply(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[test]
        fn oneof_draws_only_from_its_arms(
            x in prop_oneof![Just(2u32), Just(5u32), 10u32..12],
        ) {
            prop_assert!([2u32, 5, 10, 11].contains(&x), "{x}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = crate::collection::vec(any::<u64>(), 0..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
