//! Cross-layer tracing guarantees: the Chrome exporter emits well-formed
//! JSON with per-track monotonic timestamps, and the trace-event stream
//! folds back to exactly the metrics the runtime reports.

use std::collections::HashMap;

use exoshuffle::rt::{RtConfig, RtHandle, RunReport, TraceConfig};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec};
use exoshuffle::sort::{sort_job, SortSpec};
use exoshuffle::trace::{chrome_trace_json, EventKind, ObjectPhase, TraceCounters};

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough structure to validate the exporter
// without external dependencies.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum V {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<V>),
    Obj(Vec<(String, V)>),
}

impl V {
    fn get(&self, key: &str) -> Option<&V> {
        match self {
            V::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> f64 {
        match self {
            V::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            V::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i).copied(),
            Some(b),
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        self.s[self.i]
    }

    fn value(&mut self) -> V {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => V::Str(self.string()),
            b't' => {
                self.i += 4;
                V::Bool(true)
            }
            b'f' => {
                self.i += 5;
                V::Bool(false)
            }
            b'n' => {
                self.i += 4;
                V::Null
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> V {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return V::Obj(fields);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            if self.peek() == b',' {
                self.i += 1;
            } else {
                break;
            }
        }
        self.expect(b'}');
        V::Obj(fields)
    }

    fn array(&mut self) -> V {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return V::Arr(items);
        }
        loop {
            items.push(self.value());
            if self.peek() == b',' {
                self.i += 1;
            } else {
                break;
            }
        }
        self.expect(b']');
        V::Arr(items)
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    match self.s[self.i] {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5]).unwrap();
                            let cp = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        b => out.push(b as char),
                    }
                    self.i += 1;
                }
                b => {
                    out.push(b as char);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> V {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        V::Num(
            text.parse()
                .unwrap_or_else(|e| panic!("bad number {text:?}: {e}")),
        )
    }
}

fn parse(s: &str) -> V {
    let mut p = Parser::new(s);
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage after JSON document");
    v
}

// ---------------------------------------------------------------------
// A small traced shuffle run shared by the tests below.
// ---------------------------------------------------------------------

fn traced_run() -> RunReport {
    let mut cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 4));
    cfg.trace = TraceConfig::on();
    let spec = SortSpec {
        data_bytes: 64 * 1000 * 1000,
        num_maps: 8,
        num_reduces: 4,
        scale: 100,
        seed: 11,
    };
    let (report, ()) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::Simple);
        rt.wait_all(&outs);
    });
    report
}

#[test]
fn chrome_export_is_valid_json_with_monotonic_tracks() {
    let report = traced_run();
    assert!(
        !report.trace.is_empty(),
        "enabled tracing must retain events"
    );
    let json = chrome_trace_json(&report.trace);
    let doc = parse(&json);
    let V::Arr(entries) = doc else {
        panic!("trace must be a JSON array")
    };
    assert!(!entries.is_empty());

    // Per-(pid, tid) track timestamps must be monotonically non-decreasing,
    // and complete events must carry a positive duration.
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for e in &entries {
        let ph = e.get("ph").expect("every entry has ph").str().to_string();
        let pid = e.get("pid").expect("every entry has pid").num() as u64;
        let tid = e.get("tid").map(|t| t.num() as u64).unwrap_or(0);
        let ts = e.get("ts").map(|t| t.num()).unwrap_or(0.0);
        let prev = last_ts.entry((pid, tid)).or_insert(0.0);
        assert!(
            ts >= *prev,
            "track ({pid},{tid}) went backwards: {ts} < {prev}"
        );
        *prev = ts;
        match ph.as_str() {
            "X" => {
                spans += 1;
                assert!(e.get("dur").expect("X has dur").num() >= 1.0);
                let args = e.get("args").expect("X has args");
                assert!(args.get("task").is_some());
            }
            "C" => counters += 1,
            "M" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(
        spans as u64, report.metrics.tasks_completed,
        "one complete span per finished task"
    );
    assert!(
        counters > 0,
        "resource sampling must produce counter tracks"
    );
}

#[test]
fn folded_trace_matches_runtime_metrics() {
    let report = traced_run();
    let c = TraceCounters::fold(&report.trace);
    let m = &report.metrics;
    assert_eq!(c.tasks_completed, m.tasks_completed);
    assert_eq!(c.tasks_reexecuted, m.tasks_reexecuted);
    assert_eq!(c.net_bytes, m.net_bytes);
    assert_eq!(c.net_ops, m.net_ops);
    assert_eq!(c.disk_read_bytes, m.disk_read_bytes);
    assert_eq!(c.disk_write_bytes, m.disk_write_bytes);
    assert_eq!(c.objects_reconstructed, m.objects_reconstructed);
    assert_eq!(c.node_failures, m.node_failures);
    assert_eq!(c.executor_failures, m.executor_failures);

    // Independent check: summing the raw Transferred events reproduces the
    // network counters without going through TraceCounters at all.
    let (mut bytes, mut ops) = (0u64, 0u64);
    for ev in &report.trace {
        if let EventKind::Object(o) = &ev.kind {
            if o.phase == ObjectPhase::Transferred {
                bytes += o.bytes;
                ops += 1;
            }
        }
    }
    assert_eq!(bytes, m.net_bytes);
    assert_eq!(ops, m.net_ops);
    assert!(
        m.tasks_completed > 0 && m.net_bytes > 0,
        "run did real work"
    );
}

#[test]
fn sink_with_events_exports_without_cloning() {
    // The exporters read the retained stream in place through the
    // borrow-based accessor — no O(events) copy of the stream.
    let report = traced_run();
    let sink = exoshuffle::trace::TraceSink::new(&TraceConfig::on());
    for ev in &report.trace {
        sink.set_now(ev.at_us);
        sink.emit(ev.kind);
    }
    let json = sink.with_events(|events| {
        assert_eq!(events.len(), report.trace.len());
        chrome_trace_json(events)
    });
    let V::Arr(entries) = parse(&json) else {
        panic!("trace must be a JSON array")
    };
    assert!(!entries.is_empty());
    assert_eq!(
        sink.with_events(TraceCounters::fold),
        TraceCounters::fold(&report.trace)
    );
}

#[test]
fn disabled_tracing_retains_no_events_but_keeps_metrics() {
    let cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 2));
    let spec = SortSpec {
        data_bytes: 16 * 1000 * 1000,
        num_maps: 4,
        num_reduces: 2,
        scale: 100,
        seed: 5,
    };
    let (report, ()) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::Simple);
        rt.wait_all(&outs);
    });
    assert!(
        report.trace.is_empty(),
        "default config must not retain events"
    );
    assert!(
        report.metrics.tasks_completed > 0,
        "counters still fold while disabled"
    );
}
