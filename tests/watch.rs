//! End-to-end incident-detection guarantees: a seeded fault run fires a
//! pinned incident sequence, detection is bit-identical across reruns,
//! watching never perturbs the simulation (same discipline as
//! `tests/live_observability.rs`), incident edges land in the retained
//! trace stream as paired first-class events, and the mid-run
//! `incidents_now` query surfaces verdicts while the run is still going.

use exoshuffle::rt::{NodeId, RtConfig, RtHandle, RunReport, TraceConfig, WatchConfig};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SimDuration, SimTime};
use exoshuffle::sort::{sort_job, SortSpec};
use exoshuffle::trace::{EventKind, IncidentKind};
use exoshuffle::watch::Incident;

/// The pinned fault case: the same shape as the gate's `sort_ft_small`
/// (2 GB push* sort on 4 HDD nodes, node 3 killed at t=2 s and
/// restarted 5 s later), so this suite and `bench_gate --incidents-diff`
/// pin the same detection story from opposite sides.
fn fault_spec() -> SortSpec {
    SortSpec {
        data_bytes: 2_000_000_000,
        num_maps: 16,
        num_reduces: 16,
        scale: 40,
        seed: 7,
    }
}

fn fault_run(trace: bool, watch: bool) -> RunReport {
    let mut cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 4));
    if trace {
        cfg.trace = TraceConfig::on();
    }
    if watch {
        cfg.watch = Some(WatchConfig::default());
    }
    let spec = fault_spec();
    let (report, ()) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        rt.kill_node(
            NodeId(3),
            SimTime(2_000_000),
            Some(SimDuration::from_secs(5)),
        );
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::PushStar { map_parallelism: 2 });
        rt.wait_all(&outs);
    });
    report
}

/// The healthy counterpart: the uniform in-memory-sized pinned case
/// from `tests/live_observability.rs`, watched.
fn healthy_run(watch: bool) -> RunReport {
    let mut cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 4));
    if watch {
        cfg.watch = Some(WatchConfig::default());
    }
    let spec = SortSpec {
        data_bytes: 64 * 1000 * 1000,
        num_maps: 8,
        num_reduces: 4,
        scale: 100,
        seed: 11,
    };
    let (report, ()) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::Simple);
        rt.wait_all(&outs);
    });
    report
}

#[test]
fn fault_run_pins_exact_incident_sequence() {
    let report = fault_run(false, true);
    let watch = report.incidents.expect("watch configured");
    let incs = &watch.incidents;
    assert_eq!(incs.len(), 1, "{incs:?}");
    let inc: &Incident = &incs[0];
    assert_eq!(inc.id, 0);
    assert_eq!(inc.kind, IncidentKind::ReconstructionCascade);
    assert_eq!(inc.node, Some(3), "scoped to the killed node");
    assert_eq!(inc.t_open_us, 2_000_000, "opens at the failure time");
    assert_eq!(
        inc.t_close_us,
        Some(report.end_time.as_micros()),
        "stays open to the end and is force-closed there"
    );
    assert_eq!(inc.value, 11.0, "11 lineage resubmits attributed");
    assert_eq!(inc.threshold, 1.0, "direct-loss set at the kill instant");
    assert_eq!(inc.severity, 11.0);
}

#[test]
fn healthy_run_fires_no_incidents() {
    let report = healthy_run(true);
    let watch = report.incidents.expect("watch configured");
    assert!(watch.is_empty(), "{:?}", watch.incidents);
}

#[test]
fn detection_is_bit_identical_across_reruns() {
    let a = fault_run(false, true).incidents.expect("watched");
    let b = fault_run(false, true).incidents.expect("watched");
    assert_eq!(a.to_json().render(), b.to_json().render());
}

#[test]
fn watch_does_not_perturb_the_simulation() {
    // Same discipline as `live_and_plain_runs_agree_on_metrics`: the
    // detectors are pure observers, so a watched run must report
    // identical end time and metrics to an unwatched one.
    let plain = fault_run(false, false);
    let watched = fault_run(false, true);
    assert_eq!(plain.end_time, watched.end_time);
    assert_eq!(
        plain.metrics.tasks_completed,
        watched.metrics.tasks_completed
    );
    assert_eq!(
        plain.metrics.tasks_reexecuted,
        watched.metrics.tasks_reexecuted
    );
    assert_eq!(plain.metrics.net_bytes, watched.metrics.net_bytes);
    assert_eq!(
        plain.metrics.disk_read_bytes,
        watched.metrics.disk_read_bytes
    );
    assert_eq!(
        plain.metrics.disk_write_bytes,
        watched.metrics.disk_write_bytes
    );
    assert!(plain.incidents.is_none());
}

#[test]
fn incident_edges_reach_the_trace_as_paired_events() {
    let report = fault_run(true, true);
    let watch = report.incidents.as_ref().expect("watch configured");

    let mut opens = Vec::new();
    let mut closes = Vec::new();
    for ev in &report.trace {
        if let EventKind::Incident(inc) = &ev.kind {
            if inc.open {
                opens.push((ev.at_us, *inc));
            } else {
                closes.push((ev.at_us, *inc));
            }
        }
    }
    assert_eq!(opens.len(), watch.len(), "one open edge per incident");
    assert_eq!(closes.len(), watch.len(), "every incident closed");
    for inc in &watch.incidents {
        let (at, open) = opens
            .iter()
            .find(|(_, e)| e.id == inc.id)
            .expect("open edge present");
        assert_eq!(*at, inc.t_open_us);
        assert_eq!(open.kind, inc.kind);
        assert_eq!(open.node, inc.node);
        let (at, close) = closes
            .iter()
            .find(|(_, e)| e.id == inc.id)
            .expect("close edge present");
        assert_eq!(*at, inc.t_close_us.expect("closed"));
        assert_eq!(close.severity, inc.severity, "close edge carries the peak");
    }
}

#[test]
fn incidents_are_queryable_mid_run() {
    let mut cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), 4));
    cfg.watch = Some(WatchConfig::default());
    let spec = fault_spec();
    let (_, (before, after)) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        rt.kill_node(
            NodeId(3),
            SimTime(2_000_000),
            Some(SimDuration::from_secs(5)),
        );
        let before = rt.incidents_now();
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::PushStar { map_parallelism: 2 });
        rt.wait_all(&outs);
        (before, rt.incidents_now())
    });
    assert!(before.is_empty(), "nothing decided before work starts");
    assert_eq!(after.len(), 1, "{after:?}");
    assert_eq!(after[0].kind, IncidentKind::ReconstructionCascade);
    assert_eq!(after[0].node, Some(3));
    assert!(
        after[0].t_close_us.is_none(),
        "still open mid-run; only the end-of-run flush closes it"
    );
}

#[test]
fn unwatched_runs_query_empty() {
    let cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 2));
    let (_, incs) = exoshuffle::rt::run(cfg, |rt: &RtHandle| rt.incidents_now());
    assert!(incs.is_empty());
}
