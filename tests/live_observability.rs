//! End-to-end live observability guarantees: with trace retention OFF
//! and live streaming ON, a pinned deterministic run produces a
//! timeseries whose final snapshot matches the runtime's own metrics
//! bit-for-bit while the sink retains zero events — the sub-linear
//! memory claim the live layer exists for. The JSONL round-trip and the
//! post-hoc exo-prof cross-check pin the serialization and the sketch
//! semantics respectively.

use exoshuffle::live::{counters_from_json, LiveConfig, LiveSeries, RELATIVE_ERROR};
use exoshuffle::rt::{RtConfig, RtHandle, RunReport, TraceConfig};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec};
use exoshuffle::sort::{sort_job, SortSpec};
use exoshuffle::trace::{EventKind, Json, TaskPhase};

/// The pinned case: same shape as `tests/trace_consistency.rs`'s
/// traced_run, so the two suites watch the same workload from opposite
/// sides (retained stream vs streaming aggregates).
fn pinned_spec() -> SortSpec {
    SortSpec {
        data_bytes: 64 * 1000 * 1000,
        num_maps: 8,
        num_reduces: 4,
        scale: 100,
        seed: 11,
    }
}

fn pinned_run(trace: bool, live: bool) -> RunReport {
    let mut cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 4));
    if trace {
        cfg.trace = TraceConfig::on();
    }
    if live {
        cfg.live = Some(LiveConfig::default());
    }
    let spec = pinned_spec();
    let (report, ()) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(spec);
        let outs = run_shuffle(rt, &job, ShuffleVariant::Simple);
        rt.wait_all(&outs);
    });
    report
}

fn series(report: &RunReport) -> &LiveSeries {
    report.live.as_ref().expect("live configured")
}

#[test]
fn live_series_with_retention_off_matches_metrics_bit_for_bit() {
    let report = pinned_run(false, true);
    assert!(
        report.trace.is_empty(),
        "live streaming must not force event retention"
    );
    let s = series(&report);
    assert!(!s.is_empty());
    assert!(
        s.snapshots.windows(2).all(|w| w[0].at_us < w[1].at_us),
        "snapshot timestamps strictly monotonic"
    );

    // Final snapshot counters equal the runtime's metrics exactly.
    let c = s.final_counters();
    let m = &report.metrics;
    assert_eq!(c.tasks_completed, m.tasks_completed);
    assert_eq!(c.tasks_reexecuted, m.tasks_reexecuted);
    assert_eq!(c.net_bytes, m.net_bytes);
    assert_eq!(c.net_ops, m.net_ops);
    assert_eq!(c.disk_read_bytes, m.disk_read_bytes);
    assert_eq!(c.disk_write_bytes, m.disk_write_bytes);
    assert_eq!(c.objects_reconstructed, m.objects_reconstructed);
    assert_eq!(c.node_failures, m.node_failures);
    assert_eq!(c.executor_failures, m.executor_failures);
    assert!(
        m.tasks_completed > 0 && m.net_bytes > 0,
        "run did real work"
    );

    // The final line lands exactly at the end of the run.
    assert_eq!(
        s.snapshots.last().expect("nonempty").at_us,
        report.end_time.as_micros()
    );

    // Deltas telescope to the final cumulative counters.
    assert_eq!(s.fold_deltas(), c);
}

#[test]
fn folding_jsonl_snapshots_reproduces_final_counters() {
    // The on-disk analogue of `fold_matches_incremental_counters`:
    // parse every line of the JSONL timeseries, sum the deltas, and
    // compare with the final line's cumulative counters exactly.
    let report = pinned_run(false, true);
    let s = series(&report);
    let jsonl = s.to_jsonl();
    let mut folded = exoshuffle::trace::TraceCounters::default();
    let mut last = None;
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let j = Json::parse(line).expect("every JSONL line parses");
        let delta = counters_from_json(j.get("delta").expect("delta present"))
            .expect("delta counters complete");
        folded.add(&delta);
        last = Some(
            counters_from_json(j.get("counters").expect("counters present"))
                .expect("cumulative counters complete"),
        );
        lines += 1;
    }
    assert_eq!(lines, s.len());
    assert_eq!(folded, last.expect("at least one line"));
    assert_eq!(folded, s.final_counters());
}

#[test]
fn live_sketches_cross_check_against_post_hoc_profiler() {
    // Same pinned case with retention ON as well: the streaming
    // aggregates must agree with what exo-prof derives from the full
    // retained stream.
    let report = pinned_run(true, true);
    assert!(!report.trace.is_empty());
    let s = series(&report);
    let last = s.snapshots.last().expect("nonempty");

    // Exact per-task execution durations from the retained stream.
    let mut started = std::collections::HashMap::new();
    let mut durations = Vec::new();
    for ev in &report.trace {
        if let EventKind::Task(t) = &ev.kind {
            match t.phase {
                TaskPhase::Started => {
                    started.insert(t.task, ev.at_us);
                }
                TaskPhase::Finished => {
                    if let Some(st) = started.remove(&t.task) {
                        durations.push(ev.at_us - st);
                    }
                }
                _ => {}
            }
        }
    }
    durations.sort_unstable();
    assert_eq!(last.task_us.count, durations.len() as u64);
    assert_eq!(
        last.task_us.max_us,
        *durations.last().expect("tasks ran"),
        "sketch max is exact"
    );
    let rank = |q: f64| ((q * durations.len() as f64).ceil() as usize).clamp(1, durations.len());
    for (q, reported) in [(0.5, last.task_us.p50_us), (0.99, last.task_us.p99_us)] {
        let exact = durations[rank(q) - 1];
        assert!(reported >= exact, "p{q}: {reported} < exact {exact}");
        assert!(
            reported as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
            "p{q}: {reported} overshoots exact {exact}"
        );
    }

    // Per-stage cross-check against exo-prof's stage stats: finished
    // counts and (exact) max execution times must agree bit-for-bit.
    let prof_stages = exoshuffle::prof::stage_stats(&report.trace);
    assert!(!prof_stages.is_empty());
    for ps in &prof_stages {
        let ls = last
            .stages
            .iter()
            .find(|l| l.label == ps.label)
            .unwrap_or_else(|| panic!("live is missing stage {:?}", ps.label));
        assert_eq!(ls.finished, ps.tasks, "stage {:?} task count", ps.label);
        assert_eq!(ls.exec.max_us, ps.max_us, "stage {:?} max exec", ps.label);
    }
    assert_eq!(last.stages.len(), prof_stages.len());
}

#[test]
fn live_and_plain_runs_agree_on_metrics() {
    // Observability must not perturb the simulation: the pinned case
    // with live streaming on reports identical metrics and end time to
    // the same case with no observability at all.
    let plain = pinned_run(false, false);
    let live = pinned_run(false, true);
    assert_eq!(plain.end_time, live.end_time);
    assert_eq!(plain.metrics.tasks_completed, live.metrics.tasks_completed);
    assert_eq!(plain.metrics.net_bytes, live.metrics.net_bytes);
    assert_eq!(plain.metrics.disk_read_bytes, live.metrics.disk_read_bytes);
    assert_eq!(
        plain.metrics.disk_write_bytes,
        live.metrics.disk_write_bytes
    );
    assert!(plain.live.is_none());
}
