//! Property-based tests on core data structures and invariants.

use bytes::Bytes;
use exoshuffle::rt::Payload;
use exoshuffle::shuffle::{frame_blocks, unframe_blocks};
use exoshuffle::sim::{EventQueue, IoKind, Resource, SimDuration, SimTime};
use exoshuffle::sort::{kway_merge, sort_records, RangePartitioner, RECORD_SIZE};
use exoshuffle::store::{NodeStore, Priority, StoreConfig};
use proptest::prelude::*;

fn arb_records(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(|mut v| {
        v.truncate(v.len() / RECORD_SIZE * RECORD_SIZE);
        v
    })
}

proptest! {
    #[test]
    fn sort_records_sorts_and_preserves_multiset(mut recs in arb_records(3000)) {
        let mut expected: Vec<Vec<u8>> =
            recs.chunks_exact(RECORD_SIZE).map(|c| c.to_vec()).collect();
        sort_records(&mut recs);
        // Sorted by key.
        let keys: Vec<&[u8]> = recs.chunks_exact(RECORD_SIZE).map(|c| &c[..10]).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset of records.
        let mut actual: Vec<Vec<u8>> =
            recs.chunks_exact(RECORD_SIZE).map(|c| c.to_vec()).collect();
        expected.sort();
        actual.sort();
        prop_assert_eq!(expected, actual);
    }

    #[test]
    fn kway_merge_equals_concat_sort(blocks in proptest::collection::vec(arb_records(800), 0..6)) {
        let mut sorted_blocks = blocks.clone();
        for b in &mut sorted_blocks {
            sort_records(b);
        }
        let views: Vec<&[u8]> = sorted_blocks.iter().map(|b| &b[..]).collect();
        let merged = kway_merge(&views);
        let mut reference: Vec<u8> = blocks.concat();
        sort_records(&mut reference);
        prop_assert_eq!(merged, reference);
    }

    #[test]
    fn partitioner_is_monotone_and_in_range(
        a in proptest::collection::vec(any::<u8>(), 10),
        b in proptest::collection::vec(any::<u8>(), 10),
        parts in 1usize..500,
    ) {
        let p = RangePartitioner::new(parts);
        let (pa, pb) = (p.partition_of(&a), p.partition_of(&b));
        prop_assert!(pa < parts && pb < parts);
        if a <= b {
            prop_assert!(pa <= pb, "monotonicity violated: {:?} -> {}, {:?} -> {}", a, pa, b, pb);
        }
    }

    #[test]
    fn frame_blocks_roundtrips(
        blocks in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..200), any::<u32>()),
            0..20,
        )
    ) {
        let payloads: Vec<Payload> = blocks
            .iter()
            .map(|(data, logical)| Payload::scaled(Bytes::from(data.clone()), *logical as u64))
            .collect();
        let framed = frame_blocks(&payloads);
        prop_assert_eq!(
            framed.logical,
            payloads.iter().map(|p| p.logical).sum::<u64>()
        );
        let back = unframe_blocks(&framed);
        prop_assert_eq!(back.len(), payloads.len());
        for (orig, round) in payloads.iter().zip(&back) {
            prop_assert_eq!(&orig.data, &round.data);
            prop_assert_eq!(orig.logical, round.logical);
        }
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..10_000, 0..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn resource_completions_are_causal_and_count_bytes(
        ops in proptest::collection::vec((1u64..10_000_000, any::<bool>()), 1..50)
    ) {
        let mut r = Resource::new(
            "d",
            3,
            100.0 * 1e6,
            SimDuration::from_millis(5),
            SimDuration::from_micros(10),
        );
        let mut total = 0u64;
        for &(size, random) in &ops {
            let kind = if random { IoKind::Random } else { IoKind::Sequential };
            let end = r.submit(SimTime::ZERO, size, kind);
            // An op can never complete before its own service time.
            prop_assert!(end >= SimTime::ZERO + r.service_time(size, kind));
            total += size;
        }
        prop_assert_eq!(r.bytes_served(), total);
        prop_assert_eq!(r.ops_served(), ops.len() as u64);
    }

    #[test]
    fn store_accounting_never_underflows(
        ops in proptest::collection::vec((0u8..5, 1u64..2_000_000), 1..120)
    ) {
        // Model-based test: random create/seal/unpin/forget/spill traffic;
        // internal accounting must stay consistent throughout.
        let mut store: NodeStore<u64> = NodeStore::new(StoreConfig::ray_default(4_000_000));
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new(); // created ids with creator pin
        let mut sealed: Vec<u64> = Vec::new();
        for (op, size) in ops {
            match op {
                0 => {
                    let id = next_id;
                    next_id += 1;
                    match store.request_create(id, size, id, Priority::High) {
                        exoshuffle::store::AllocDecision::Granted
                        | exoshuffle::store::AllocDecision::Fallback => live.push(id),
                        _ => {}
                    }
                }
                1 => {
                    if let Some(id) = live.pop() {
                        store.seal(id);
                        store.unpin(id);
                        sealed.push(id);
                    }
                }
                2 => {
                    if let Some(id) = sealed.pop() {
                        store.forget(id);
                    }
                }
                3 => {
                    while let Some(batch) = store.next_spill_batch() {
                        store.spill_complete(&batch);
                    }
                }
                _ => {
                    let _ = store.take_granted();
                    let _ = store.take_failed();
                }
            }
            // free() uses saturating arithmetic; used must track slots.
            let _ = store.free();
            prop_assert!(store.len() < 1000);
        }
    }
}

/// The live quantile sketch promises a one-sided relative-error bound:
/// for any stream of durations and any rank, the reported quantile is
/// at least the exact sorted value and overshoots it by at most the
/// bucket's relative width.
mod live_sketch {
    use super::*;
    use exoshuffle::live::{QuantileSketch, RELATIVE_ERROR};

    proptest! {
        #[test]
        fn sketch_percentiles_within_relative_error_of_exact(
            // Up to ~2^39.9 µs stays below the sketch's 2^40 saturation
            // cap, so the bound must hold with no carve-outs.
            vals in proptest::collection::vec(0u64..1_000_000_000_000, 1..400),
            q_millis in 0u64..1001,
        ) {
            let q = q_millis as f64 / 1000.0;
            let mut s = QuantileSketch::new();
            for &v in &vals {
                s.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for q in [q, 0.5, 0.99, 0.999] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let est = s.quantile(q);
                prop_assert!(est >= exact, "q={}: reported {} below exact {}", q, est, exact);
                prop_assert!(
                    est as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                    "q={}: reported {} overshoots exact {} beyond {}",
                    q, est, exact, RELATIVE_ERROR
                );
            }
            prop_assert_eq!(s.count(), vals.len() as u64);
            prop_assert_eq!(s.max(), *sorted.last().unwrap());
            prop_assert_eq!(s.min(), sorted[0]);
        }
    }
}

/// Merging sketches must preserve the same one-sided relative-error
/// bound as recording into one: for any split of a stream across two
/// sketches, the merged sketch answers every quantile within the bound
/// of the exact combined distribution.
mod sketch_merge {
    use super::*;
    use exoshuffle::live::{QuantileSketch, RELATIVE_ERROR};

    proptest! {
        #[test]
        fn merge_preserves_relative_error_bound(
            a in proptest::collection::vec(0u64..1_000_000_000_000, 0..300),
            b in proptest::collection::vec(0u64..1_000_000_000_000, 1..300),
        ) {
            let mut sa = QuantileSketch::new();
            for &v in &a {
                sa.record(v);
            }
            let mut sb = QuantileSketch::new();
            for &v in &b {
                sb.record(v);
            }
            sa.merge(&sb);

            let mut sorted: Vec<u64> = a.iter().chain(&b).copied().collect();
            sorted.sort_unstable();
            prop_assert_eq!(sa.count(), sorted.len() as u64);
            prop_assert_eq!(sa.max(), *sorted.last().unwrap());
            prop_assert_eq!(sa.min(), sorted[0]);
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let est = sa.quantile(q);
                prop_assert!(est >= exact, "q={}: merged {} below exact {}", q, est, exact);
                prop_assert!(
                    est as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                    "q={}: merged {} overshoots exact {} beyond {}",
                    q, est, exact, RELATIVE_ERROR
                );
            }
        }
    }
}

/// Detector quiescence: a uniform, fault-free synthetic event stream —
/// evenly spread tasks with tightly banded execution times, modest
/// queue delays, no spills, no failures — must fire zero incidents at
/// the default thresholds, for any draw of the stream's shape.
mod watch_quiescence {
    use super::*;
    use exoshuffle::sim::{DeviceCaps, NodeCaps};
    use exoshuffle::trace::{Event, EventKind, TaskPhase, TaskSpan};
    use exoshuffle::watch::{WatchConfig, WatchHandle};

    fn caps(nodes: usize) -> DeviceCaps {
        DeviceCaps::uniform(
            NodeCaps {
                cpu_slots: 8,
                disk_seq_bw: 1e8,
                disk_random_iops: 1500.0,
                disk_devices: 1,
                nic_bw: 1e8,
                store_bytes: 100_000_000,
            },
            nodes,
        )
    }

    fn task_ev(at_us: u64, task: u64, node: u32, phase: TaskPhase) -> Event {
        Event {
            at_us,
            kind: EventKind::Task(TaskSpan {
                job: 0,
                task,
                phase,
                node,
                label: "map",
                attempt: 0,
                retry: false,
                reason: None,
            }),
        }
    }

    proptest! {
        #[test]
        fn uniform_no_fault_stream_fires_zero_incidents(
            nodes in 2usize..8,
            tasks in 4u64..60,
            stride_us in 10_000u64..200_000,
            // Execution stays under the 500 ms straggler floor and the
            // band is narrower than the 3× ratio; queue delays stay
            // under the 50 ms baseline floor.
            exec_us in proptest::collection::vec(100_000u64..400_000, 60),
            delay_us in proptest::collection::vec(0u64..40_000, 60),
        ) {
            let handle = WatchHandle::new(WatchConfig::default(), &caps(nodes));
            let mut obs = handle.observer();
            let mut events = Vec::new();
            let mut end = 0u64;
            for i in 0..tasks {
                let at = i * stride_us;
                let node = (i % nodes as u64) as u32;
                let started = at + delay_us[i as usize % delay_us.len()];
                let finished = started + exec_us[i as usize % exec_us.len()];
                events.push(task_ev(at, i, node, TaskPhase::Scheduled));
                events.push(task_ev(started, i, node, TaskPhase::Started));
                events.push(task_ev(finished, i, node, TaskPhase::Finished));
                end = end.max(finished);
            }
            // Observers see the sink's stream in virtual-time order.
            events.sort_by_key(|e| e.at_us);
            for ev in &events {
                obs.on_event(ev);
            }
            let report = handle.finish(end);
            prop_assert!(report.is_empty(), "incidents: {:?}", report.incidents);
        }
    }
}

/// Random small DAGs executed on the runtime must produce exactly the
/// values a direct (reference) evaluation produces — regardless of
/// topology, placement or payload sizes.
mod random_dags {
    use super::*;
    use exoshuffle::rt::{RtConfig, SchedulingStrategy, TaskCtx};
    use exoshuffle::sim::{ClusterSpec, NodeSpec};

    #[derive(Clone, Debug)]
    struct NodeSpecOp {
        /// Indices of earlier DAG nodes used as args.
        deps: Vec<usize>,
        /// Added constant.
        salt: u8,
        /// Placement choice.
        spread: bool,
    }

    fn arb_dag() -> impl Strategy<Value = Vec<NodeSpecOp>> {
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<bool>(),
                proptest::collection::vec(0usize..64, 0..4),
            ),
            1..24,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (salt, spread, deps))| NodeSpecOp {
                    deps: deps
                        .into_iter()
                        .map(|d| d % (i.max(1)))
                        .filter(|_| i > 0)
                        .collect(),
                    salt,
                    spread,
                })
                .collect()
        })
    }

    /// Reference semantics: value(node) = salt + sum(dep values), wrapping.
    fn reference(dag: &[NodeSpecOp]) -> Vec<u8> {
        let mut vals: Vec<u8> = Vec::with_capacity(dag.len());
        for op in dag {
            let mut v = op.salt;
            for &d in &op.deps {
                v = v.wrapping_add(vals[d]);
            }
            vals.push(v);
        }
        vals
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn runtime_matches_reference_semantics(dag in arb_dag()) {
            let expect = reference(&dag);
            let cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), 3));
            let (_rep, got) = exoshuffle::rt::run(cfg, |rt| {
                let mut refs: Vec<exoshuffle::rt::ObjectRef> = Vec::new();
                for op in &dag {
                    let salt = op.salt;
                    let mut b = rt
                        .task(move |ctx: TaskCtx| {
                            let mut v = salt;
                            for a in &ctx.args {
                                v = v.wrapping_add(a.data[0]);
                            }
                            vec![Payload::inline(Bytes::from(vec![v]))]
                        });
                    for &d in &op.deps {
                        b = b.arg(&refs[d]);
                    }
                    if op.spread {
                        b = b.strategy(SchedulingStrategy::Spread);
                    }
                    refs.push(b.submit_one());
                }
                rt.get(&refs).unwrap().iter().map(|p| p.data[0]).collect::<Vec<u8>>()
            });
            prop_assert_eq!(got, expect);
        }
    }
}
