//! Failure-matrix integration: harder fault scenarios than the single
//! kill of `sort_end_to_end.rs` — staggered multi-node failures and
//! executor failures in the middle of a shuffle, all validated
//! record-for-record.

use exoshuffle::rt::{NodeId, RtConfig, RtHandle};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SimDuration, SimTime};
use exoshuffle::sort::{sort_job, validate_sorted, SortSpec};

fn spec() -> SortSpec {
    SortSpec {
        data_bytes: 256 * 1000 * 1000,
        num_maps: 20,
        num_reduces: 10,
        scale: 400,
        seed: 31,
    }
}

fn cluster(nodes: usize) -> RtConfig {
    RtConfig::new(ClusterSpec::homogeneous(NodeSpec::d3_2xlarge(), nodes))
}

#[test]
fn two_staggered_node_failures_recover() {
    let s = spec();
    let (report, outputs) = exoshuffle::rt::run(cluster(5), |rt: &RtHandle| {
        rt.kill_node(NodeId(1), SimTime(40_000), Some(SimDuration::from_secs(20)));
        rt.kill_node(
            NodeId(3),
            SimTime(120_000),
            Some(SimDuration::from_secs(20)),
        );
        let outs = run_shuffle(
            rt,
            &sort_job(s),
            ShuffleVariant::PushStar { map_parallelism: 2 },
        );
        rt.get(&outs).expect("recovered output")
    });
    validate_sorted(&s, &outputs).expect("correct despite two failures");
    assert_eq!(report.metrics.node_failures, 2);
}

#[test]
fn executor_failure_mid_shuffle_is_cheaper_than_node_failure() {
    let s = spec();
    let run = |f: &(dyn Fn(&RtHandle) + Sync)| {
        let (report, outputs) = exoshuffle::rt::run(cluster(4), |rt: &RtHandle| {
            f(rt);
            let outs = run_shuffle(
                rt,
                &sort_job(s),
                ShuffleVariant::PushStar { map_parallelism: 2 },
            );
            rt.get(&outs).expect("output")
        });
        validate_sorted(&s, &outputs).expect("validated");
        report
    };
    let clean = run(&|_| {});
    let exec = run(&|rt| rt.kill_executors(NodeId(2), SimTime(400_000)));
    let node = run(&|rt| {
        rt.kill_node(
            NodeId(2),
            SimTime(400_000),
            Some(SimDuration::from_secs(20)),
        )
    });
    // Executor failure keeps objects (store survives); node failure loses
    // them and must reconstruct, so it can never be cheaper.
    assert!(exec.end_time >= clean.end_time);
    assert!(
        node.end_time >= exec.end_time,
        "node failure {} must cost at least executor failure {}",
        node.end_time,
        exec.end_time
    );
}

#[test]
fn restarted_node_rejoins_and_output_stays_correct() {
    let s = spec();
    let (_report, outputs) = exoshuffle::rt::run(cluster(3), |rt: &RtHandle| {
        // Fast restart: the node comes back while the job is still going.
        rt.kill_node(NodeId(1), SimTime(200_000), Some(SimDuration::from_secs(2)));
        let outs = run_shuffle(rt, &sort_job(s), ShuffleVariant::Simple);
        rt.get(&outs).expect("output")
    });
    validate_sorted(&s, &outputs).expect("correct with fast restart");
}

#[test]
fn failure_during_merge_variant_recovers() {
    let s = spec();
    let (_report, outputs) = exoshuffle::rt::run(cluster(4), |rt: &RtHandle| {
        rt.kill_node(
            NodeId(0),
            SimTime(500_000),
            Some(SimDuration::from_secs(20)),
        );
        let outs = run_shuffle(rt, &sort_job(s), ShuffleVariant::Merge { factor: 4 });
        rt.get(&outs).expect("output")
    });
    validate_sorted(&s, &outputs).expect("merge variant recovers");
}
