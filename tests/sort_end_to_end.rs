//! Cross-crate integration: the Sort Benchmark through every shuffle
//! variant, validated record-for-record, including under failure injection.

use exoshuffle::rt::{RtConfig, RtHandle};
use exoshuffle::shuffle::{run_shuffle, ShuffleVariant};
use exoshuffle::sim::{ClusterSpec, NodeSpec, SimDuration};
use exoshuffle::sort::{sort_job, validate_sorted, SortSpec};

fn spec() -> SortSpec {
    SortSpec {
        data_bytes: 64 * 1000 * 1000, // 64 MB logical
        num_maps: 16,
        num_reduces: 8,
        scale: 100, // 640 KB real data
        seed: 2026,
    }
}

fn cluster(nodes: usize) -> RtConfig {
    RtConfig::new(ClusterSpec::homogeneous(NodeSpec::i3_2xlarge(), nodes))
}

fn run_and_validate(cfg: RtConfig, variant: ShuffleVariant) {
    let s = spec();
    let (_report, outputs) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(s);
        let outs = run_shuffle(rt, &job, variant);
        rt.get(&outs).expect("sort outputs")
    });
    validate_sorted(&s, &outputs).expect("globally sorted, loss-free output");
}

#[test]
fn simple_shuffle_sorts_correctly() {
    run_and_validate(cluster(4), ShuffleVariant::Simple);
}

#[test]
fn merge_shuffle_sorts_correctly() {
    run_and_validate(cluster(4), ShuffleVariant::Merge { factor: 4 });
}

#[test]
fn push_shuffle_sorts_correctly() {
    run_and_validate(cluster(4), ShuffleVariant::Push { factor: 4 });
}

#[test]
fn push_star_shuffle_sorts_correctly() {
    run_and_validate(cluster(4), ShuffleVariant::PushStar { map_parallelism: 2 });
}

#[test]
fn sort_survives_memory_pressure() {
    // Store far smaller than the working set: everything must spill and
    // restore, and the output must still be perfect.
    let mut cfg = cluster(2);
    cfg.object_store_capacity = Some(4 * 1000 * 1000); // 4 MB vs 64 MB job
    cfg.fuse_min = 1000 * 1000;
    let s = spec();
    let (report, outputs) = exoshuffle::rt::run(cfg, |rt: &RtHandle| {
        let job = sort_job(s);
        let outs = run_shuffle(rt, &job, ShuffleVariant::PushStar { map_parallelism: 2 });
        rt.get(&outs).expect("sort outputs")
    });
    validate_sorted(&s, &outputs).expect("correct under heavy spilling");
    assert!(
        report.metrics.store.spilled_bytes > 0,
        "pressure should force spills"
    );
}

#[test]
fn push_star_sort_survives_node_failure() {
    let mut s = spec();
    s.data_bytes = 512 * 1000 * 1000; // long enough that the kill lands mid-run
    s.scale = 800;
    let (report, outputs) = exoshuffle::rt::run(cluster(4), |rt: &RtHandle| {
        let job = sort_job(s);
        // Kill node 2 mid-run, restart 30 s later (§5.1.5).
        rt.kill_node(
            exoshuffle::rt::NodeId(2),
            exoshuffle::sim::SimTime(400_000),
            Some(SimDuration::from_secs(30)),
        );
        let outs = run_shuffle(rt, &job, ShuffleVariant::PushStar { map_parallelism: 2 });
        rt.get(&outs).expect("sort outputs despite failure")
    });
    validate_sorted(&s, &outputs).expect("correct despite node failure");
    assert_eq!(report.metrics.node_failures, 1);
}

#[test]
fn simple_sort_survives_node_failure() {
    let mut s = spec();
    s.data_bytes = 512 * 1000 * 1000;
    s.scale = 800;
    let (_report, outputs) = exoshuffle::rt::run(cluster(4), |rt: &RtHandle| {
        let job = sort_job(s);
        rt.kill_node(
            exoshuffle::rt::NodeId(1),
            exoshuffle::sim::SimTime(400_000),
            Some(SimDuration::from_secs(30)),
        );
        let outs = run_shuffle(rt, &job, ShuffleVariant::Simple);
        rt.get(&outs).expect("sort outputs despite failure")
    });
    validate_sorted(&s, &outputs).expect("correct despite node failure");
}

#[test]
fn all_variants_agree_on_output() {
    let s = spec();
    let mut results: Vec<Vec<usize>> = Vec::new();
    for variant in [
        ShuffleVariant::Simple,
        ShuffleVariant::Merge { factor: 4 },
        ShuffleVariant::Push { factor: 4 },
        ShuffleVariant::PushStar { map_parallelism: 2 },
    ] {
        let (_r, outs) = exoshuffle::rt::run(cluster(3), |rt: &RtHandle| {
            let job = sort_job(s);
            let outs = run_shuffle(rt, &job, variant);
            rt.get(&outs).expect("outputs")
        });
        results.push(outs.iter().map(|p| p.data.len()).collect());
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "identical partition sizes: {results:?}"
    );
}
