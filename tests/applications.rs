//! Cross-crate application integration: online aggregation and ML
//! training on top of the full stack.

use exoshuffle::agg::{regular_aggregation, streaming_aggregation, AggConfig, PageviewSpec};
use exoshuffle::ml::{
    exoshuffle_training, petastorm_training, DatasetSpec, PetastormConfig, TrainConfig,
};
use exoshuffle::rt::RtConfig;
use exoshuffle::shuffle::{ShuffleVariant, ShuffleWindow};
use exoshuffle::sim::{ClusterSpec, NodeSpec};

fn agg_cfg() -> AggConfig {
    AggConfig {
        spec: PageviewSpec {
            data_bytes: 200_000_000,
            num_maps: 20,
            num_reduces: 10,
            entries_per_map: 1500,
            pages: 30_000,
            seed: 5,
        },
        rounds: 5,
    }
}

#[test]
fn streaming_aggregation_converges_to_batch_truth() {
    let cfg = agg_cfg();
    let rt_cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::r6i_2xlarge(), 3));
    let (_rep, samples) = exoshuffle::rt::run(rt_cfg, |rt| {
        let (_t, truth) = regular_aggregation(rt, &cfg);
        let (samples, _) = streaming_aggregation(rt, &cfg, &truth);
        samples
    });
    assert_eq!(samples.len(), 5);
    assert!(samples.last().expect("rounds").kl < 1e-9, "final KL ~0");
    // Error should broadly decrease (allow small non-monotonicity early).
    assert!(samples[0].kl >= samples.last().expect("rounds").kl);
}

#[test]
fn streaming_shuffle_on_different_variant_clusters_is_deterministic() {
    let cfg = agg_cfg();
    let run = || {
        let rt_cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::r6i_2xlarge(), 3));
        let (_rep, samples) = exoshuffle::rt::run(rt_cfg, |rt| {
            let (_t, truth) = regular_aggregation(rt, &cfg);
            let (samples, _) = streaming_aggregation(rt, &cfg, &truth);
            samples
                .iter()
                .map(|s| (s.at.as_micros(), s.kl.to_bits()))
                .collect::<Vec<_>>()
        });
        samples
    };
    assert_eq!(run(), run());
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        dataset: DatasetSpec::new(6000, 8, 11),
        epochs: 3,
        batch_size: 64,
        lr: 0.5,
        variant: ShuffleVariant::Simple,
        window: ShuffleWindow::Full,
        gpu_ns_per_sample: 30_000.0,
    }
}

#[test]
fn distributed_training_runs_on_four_nodes() {
    let cfg = train_cfg();
    let rt_cfg = RtConfig::new(ClusterSpec::homogeneous(NodeSpec::g4dn_xlarge(), 4));
    let (rep, report) = exoshuffle::rt::run(rt_cfg, |rt| exoshuffle_training(rt, &cfg));
    assert_eq!(report.accuracy.len(), 3);
    assert!(*report.accuracy.last().expect("epochs") > 0.8);
    // Distributed full shuffle must actually move data between nodes.
    assert!(rep.metrics.net_bytes > 0);
}

#[test]
fn windowed_training_moves_less_data_than_full() {
    let full = train_cfg();
    let mut windowed = full;
    windowed.window = ShuffleWindow::Window { partitions: 2 };
    let rt_cfg = || RtConfig::new(ClusterSpec::homogeneous(NodeSpec::g4dn_xlarge(), 4));
    let (full_rep, _) = exoshuffle::rt::run(rt_cfg(), |rt| exoshuffle_training(rt, &full));
    let (win_rep, _) = exoshuffle::rt::run(rt_cfg(), |rt| exoshuffle_training(rt, &windowed));
    assert!(
        win_rep.metrics.net_bytes <= full_rep.metrics.net_bytes,
        "windowed {} vs full {}",
        win_rep.metrics.net_bytes,
        full_rep.metrics.net_bytes
    );
}

#[test]
fn petastorm_loader_is_slower_than_pipelined_exoshuffle() {
    let es = train_cfg();
    let rt_cfg = || RtConfig::new(ClusterSpec::homogeneous(NodeSpec::g4dn_4xlarge(), 1));
    let (_r, es_rep) = exoshuffle::rt::run(rt_cfg(), |rt| exoshuffle_training(rt, &es));
    let ps_cfg = PetastormConfig {
        dataset: es.dataset,
        epochs: es.epochs,
        batch_size: es.batch_size,
        lr: es.lr,
        buffer_fraction: 0.09,
        gpu_ns_per_sample: es.gpu_ns_per_sample,
        decode_throughput: 30.0 * 1e6,
    };
    let (_r, ps_rep) = exoshuffle::rt::run(rt_cfg(), |rt| petastorm_training(rt, &ps_cfg));
    let ps_rep = ps_rep.expect("buffer fits");
    assert!(
        es_rep.total_time < ps_rep.total_time,
        "pipelined {} should beat buffered {}",
        es_rep.total_time,
        ps_rep.total_time
    );
}
