#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> bench_gate (perf-regression gate vs bench/baseline.json)"
./scripts/bench_gate.sh

echo "==> heterogeneous smoke (mixed HDD+SSD sort + g4dn/r6i ML loader)"
cargo run --release -p exo-bench --bin hetero -- --quick

echo "==> CI OK"
