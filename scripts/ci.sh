#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> exo-audit --deny (static determinism & safety audit)"
mkdir -p results
cargo run -q -p exo-audit -- --deny --json results/audit.json

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> bench_gate (perf-regression gate vs bench/baseline.json)"
./scripts/bench_gate.sh

echo "==> multi-tenant service smoke (open-loop 3-tenant job stream)"
cargo run --release -p exo-bench --bin multitenant -- --quick
grep -q '"isolation_violations":0' results/multitenant.json || {
    echo "FAIL: multi-tenant run reported isolation violations" >&2
    exit 1
}

echo "==> heterogeneous smoke (mixed HDD+SSD sort + g4dn/r6i ML loader)"
cargo run --release -p exo-bench --bin hetero -- --quick

echo "==> placement-policy smoke (load_balance vs bound_aware vs hybrid)"
cargo run --release -p exo-bench --bin hetero -- --compare --quick
grep -q '"bound_aware_not_worse":true' results/hetero_policy.json || {
    echo "FAIL: bound-aware placement regressed vs load_balance on mixed_hdd_ssd" >&2
    exit 1
}

echo "==> live-observability smoke (--live JSONL timeseries + live_check)"
cargo run --release -p exo-bench --bin fig4c -- --quick --live results/fig4c.live.jsonl
cargo run --release -p exo-bench --bin live_check -- \
    results/fig4c.live.jsonl results/fig4c.json

echo "==> cloudsort_xl smoke (engine-core throughput case, rerun bit-identity)"
cargo run --release -p exo-bench --bin cloudsort_xl -- --quick

echo "==> incident gate (bench_gate --incidents-diff vs bench/incidents.json)"
cargo run --release -p exo-bench --bin bench_gate -- --incidents-diff \
    --out results/INCIDENTS_ci.json

echo "==> watched fault-case smoke (--watch incident JSONL, validated twice for determinism)"
cargo run --release -p exo-bench --bin fig4_ft -- --quick --watch \
    --live results/fig4_ft.live.jsonl
cargo run --release -p exo-bench --bin fig4_ft -- --quick --watch \
    --live results/fig4_ft.live.rerun.jsonl
cargo run --release -p exo-bench --bin live_check -- \
    results/fig4_ft.live.jsonl results/fig4_ft.json \
    --rerun results/fig4_ft.live.rerun.jsonl
# results/*.jsonl (incident + snapshot lines) are uploaded as CI artifacts.

echo "==> CI OK"
