#!/usr/bin/env bash
# Append the captured results/ outputs to EXPERIMENTS.md (idempotent: the
# recorded section is regenerated each time).
set -euo pipefail
cd "$(dirname "$0")/.."
marker="<!-- RECORDED-OUTPUTS -->"
# Trim anything after the marker, then re-append.
if grep -q "$marker" EXPERIMENTS.md; then
    sed -i "/$marker/,\$d" EXPERIMENTS.md
fi
{
    echo "$marker"
    echo
    for f in results/fig4a.txt results/fig4b.txt results/fig4c.txt results/fig4d.txt \
             results/fig4_ft.txt results/table1.txt results/fig5.txt results/fig6.txt \
             results/fig7.txt results/fig8.txt results/fig9.txt results/ablations.txt \
             results/cloudsort.txt; do
        [ -f "$f" ] || continue
        echo "### \`$f\`"
        echo
        echo '```'
        cat "$f"
        echo '```'
        echo
    done
} >> EXPERIMENTS.md
echo "recorded $(ls results/*.txt 2>/dev/null | wc -l) result files into EXPERIMENTS.md"
