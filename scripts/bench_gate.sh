#!/usr/bin/env bash
# Perf-regression gate: run the pinned small benchmark suite and compare
# against the committed baseline (bench/baseline.json). Exits non-zero on
# any out-of-tolerance metric.
#
#   ./scripts/bench_gate.sh                 # run + compare
#   ./scripts/bench_gate.sh --write-baseline  # regenerate the baseline
#
# Extra flags are forwarded to the bench_gate binary (--baseline, --out).
set -euo pipefail

cd "$(dirname "$0")/.."

cargo run --release -p exo-bench --bin bench_gate -- "$@"
