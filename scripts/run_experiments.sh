#!/usr/bin/env bash
# Regenerate every paper artefact into results/.
# Usage: scripts/run_experiments.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."
MODE="${1:-}"
cargo build --release -p exo-bench
mkdir -p results
for bin in fig4a fig4b fig4c fig4d fig4_ft table1 fig5 fig6 fig7 fig8 fig9 ablations cloudsort; do
    echo "=== $bin $MODE ==="
    ./target/release/$bin $MODE | tee "results/$bin.txt"
done
